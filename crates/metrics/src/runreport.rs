//! Merged reports of concurrent, sharded runs.
//!
//! The concurrent harness drives several clients, each measuring its
//! own shard with a private [`LatencyHistogram`] and per-window
//! [`TimeSeries`]. A [`RunReport`] folds those per-client
//! [`ShardReport`]s into one experiment-level result: summed additive
//! series, one merged latency distribution, and aggregate
//! write-amplification from the summed byte counters.
//!
//! Rendering is deliberately deterministic: every number is formatted
//! with fixed precision and shards are ordered by index, so two runs
//! with the same seed produce **byte-identical** report text — the
//! property the CI determinism check diffs for.

use ptsbench_maint::MaintStats;
use ptsbench_trace::CauseStats;

use crate::cache::CacheStats;
use crate::histogram::LatencyHistogram;
use crate::load::{LoadImbalance, ShardLoad};
use crate::mt::MtStats;
use crate::report::render_series_table;
use crate::slo::SloStats;
use crate::timeseries::TimeSeries;

/// Submission-queue depth summary of one shard: how deep its engine's
/// asynchronous I/O actually ran during the measured phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueDepthSummary {
    /// Commands submitted through I/O queues.
    pub submitted: u64,
    /// Maximum commands in flight at any submission.
    pub max_in_flight: u64,
    /// Mean in-flight count over all submissions.
    pub mean_in_flight: f64,
}

/// One client's view of its shard, as handed to [`RunReport::merge`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard name (e.g. `shard0`); reports render shards sorted by
    /// their position in the merge input, so pass them in index order.
    pub name: String,
    /// Operations executed in the measured phase.
    pub ops: u64,
    /// Whether the shard ended early because its partition filled up.
    pub out_of_space: bool,
    /// Per-op latency distribution (simulated ns).
    pub latency: LatencyHistogram,
    /// Application payload bytes written during the measured phase.
    pub app_bytes: u64,
    /// Host bytes reaching the device during the measured phase.
    pub host_bytes: u64,
    /// In-flight-depth metrics of the shard's submission queues.
    /// `None` for synchronous (queue-depth-1) runs — and rendered only
    /// when `Some`, so depth-1 reports stay byte-identical to the
    /// pre-queue renderer.
    pub io_depth: Option<QueueDepthSummary>,
    /// Per-request queue-delay distribution (time between front-end
    /// submission and service start) when the shard was driven through
    /// the serving front-end. `None` — and unrendered — for direct
    /// harness runs and for the front-end's conformance configuration,
    /// which must reproduce direct reports byte-identically.
    pub queue_delay: Option<LatencyHistogram>,
    /// Serving-load accounting (requests routed, engine busy time) when
    /// driven through the front-end; same `None` contract as
    /// [`ShardReport::queue_delay`].
    pub load: Option<ShardLoad>,
    /// SLO accounting (admitted/rejected/shed, goodput) when the
    /// front-end ran with an *active* admission policy. `None` — and
    /// unrendered — otherwise, so policy-free reports stay
    /// byte-identical to pre-SLO output (pinned in
    /// `tests/slo_conformance.rs`).
    pub slo: Option<SloStats>,
    /// Multi-tenant accounting (per-class SLO lanes, starvation maxima,
    /// per-tenant quota ledgers) when the front-end ran with classes,
    /// a reordering discipline or tenant quotas active. `None` — and
    /// unrendered — otherwise, so class-less reports stay
    /// byte-identical to pre-multi-tenant output (pinned in
    /// `tests/tenant_conformance.rs`).
    pub mt: Option<MtStats>,
    /// Read-path cache accounting (block cache and/or pager) when the
    /// run was configured with a cache budget. `None` — and unrendered
    /// — otherwise, so cache-off reports stay byte-identical to
    /// pre-cache output (pinned in `tests/cache_conformance.rs`).
    pub cache: Option<CacheStats>,
    /// Per-cause device traffic attribution (which request kinds and
    /// background activities each device byte belongs to) when the run
    /// was traced. `None` — and unrendered — otherwise, so untraced
    /// reports stay byte-identical to pre-trace output (pinned in
    /// `tests/trace_conformance.rs`).
    pub cause: Option<CauseStats>,
    /// Background-maintenance accounting (jobs, slices, stall time,
    /// write/space amplification) when the run deferred maintenance.
    /// `None` — and unrendered — otherwise, so maintenance-off reports
    /// stay byte-identical to pre-maintenance output (pinned in
    /// `tests/maint_conformance.rs`).
    pub maint: Option<MaintStats>,
    /// Additive per-window series (throughput, device MB/s, ...). All
    /// shards must emit the same series names in the same order, on the
    /// same window boundaries.
    pub series: Vec<TimeSeries>,
}

/// The merged outcome of one concurrent sharded experiment.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Configuration label.
    pub label: String,
    /// Client threads that drove the run.
    pub clients: usize,
    /// Total operations across all shards.
    pub ops: u64,
    /// Merged latency distribution.
    pub latency: LatencyHistogram,
    /// Merged queue-delay distribution across all shards that reported
    /// one (`None` when no shard did).
    pub queue_delay: Option<LatencyHistogram>,
    /// Aggregate application bytes written.
    pub app_bytes: u64,
    /// Aggregate host bytes written.
    pub host_bytes: u64,
    /// Summed additive series (same names/order as the shard inputs).
    pub series: Vec<TimeSeries>,
    /// The per-shard inputs, in merge order.
    pub shards: Vec<ShardReport>,
}

impl RunReport {
    /// Folds per-shard reports into one run-level report. Shards must
    /// be passed in shard-index order for deterministic rendering.
    pub fn merge(label: impl Into<String>, clients: usize, shards: Vec<ShardReport>) -> Self {
        assert!(!shards.is_empty(), "a run needs at least one shard");
        let mut ops: u64 = 0;
        let mut app_bytes: u64 = 0;
        let mut host_bytes: u64 = 0;
        let mut latency = LatencyHistogram::new();
        let mut queue_delay: Option<LatencyHistogram> = None;
        let mut series: Vec<TimeSeries> = Vec::new();
        for shard in &shards {
            ops = ops.saturating_add(shard.ops);
            app_bytes = app_bytes.saturating_add(shard.app_bytes);
            host_bytes = host_bytes.saturating_add(shard.host_bytes);
            latency.merge(&shard.latency);
            if let Some(qd) = &shard.queue_delay {
                queue_delay
                    .get_or_insert_with(LatencyHistogram::new)
                    .merge(qd);
            }
            for (i, s) in shard.series.iter().enumerate() {
                match series.get_mut(i) {
                    Some(agg) => {
                        assert_eq!(
                            agg.name(),
                            s.name(),
                            "shards must emit the same series in the same order"
                        );
                        agg.merge(s);
                    }
                    None => series.push(s.clone()),
                }
            }
        }
        Self {
            label: label.into(),
            clients,
            ops,
            latency,
            queue_delay,
            app_bytes,
            host_bytes,
            series,
            shards,
        }
    }

    /// Aggregate write amplification above the device (WA-A): host
    /// bytes per application byte.
    pub fn wa_a(&self) -> f64 {
        if self.app_bytes == 0 {
            1.0
        } else {
            self.host_bytes as f64 / self.app_bytes as f64
        }
    }

    /// The merged series of a given name, if any shard emitted it.
    pub fn series_named(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// Mean of the last half of a merged series (steady-state view).
    pub fn steady_mean(&self, name: &str) -> Option<f64> {
        let s = self.series_named(name)?;
        s.tail_mean((s.len() / 2).max(1))
    }

    /// Shards that ran out of space.
    pub fn out_of_space_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.out_of_space).count()
    }

    /// The merged queue-delay CDF as `(ns, cumulative fraction)` points
    /// (`None` when no shard reported queue delays). Tail-latency plots
    /// — and the `fig_tail` assertions — read directly off these.
    pub fn queue_delay_cdf(&self) -> Option<Vec<(u64, f64)>> {
        self.queue_delay.as_ref().map(|qd| qd.cdf_points())
    }

    /// A merged queue-delay quantile in nanoseconds (`None` when no
    /// shard reported queue delays).
    pub fn queue_delay_quantile(&self, q: f64) -> Option<u64> {
        self.queue_delay.as_ref().map(|qd| qd.quantile(q))
    }

    /// Cross-shard load imbalance, folded over every shard that
    /// reported serving-load accounting (`None` when none did).
    pub fn load_imbalance(&self) -> Option<LoadImbalance> {
        let loads: Vec<ShardLoad> = self.shards.iter().filter_map(|s| s.load).collect();
        LoadImbalance::from_shards(&loads)
    }

    /// Fleet-level SLO accounting, folded over every shard that
    /// reported it (`None` when none did — i.e. no admission policy was
    /// active). Counters sum; the span stays the shared measurement
    /// window, so [`SloStats::goodput_per_sec`] is the fleet rate.
    pub fn slo_totals(&self) -> Option<SloStats> {
        self.shards
            .iter()
            .filter_map(|s| s.slo.as_ref())
            .fold(None, |acc, s| {
                let mut total = acc.unwrap_or_default();
                total.merge(s);
                Some(total)
            })
    }

    /// Fleet-level multi-tenant accounting, folded over every shard
    /// that reported it (`None` when none did — i.e. classes, tenant
    /// quotas and reordering disciplines were all inactive). Class
    /// lanes merge lane-wise; tenant ledgers merge by id; starvation
    /// maxima take the fleet-wide max.
    pub fn mt_totals(&self) -> Option<MtStats> {
        self.shards
            .iter()
            .filter_map(|s| s.mt.as_ref())
            .fold(None, |acc, s| {
                let mut total: MtStats = acc.unwrap_or_default();
                total.merge(s);
                Some(total)
            })
    }

    /// Run-level cache accounting, folded over every shard that
    /// reported it (`None` when none did — i.e. no cache budget was
    /// configured). Counters sum across shards; the hit rate is the
    /// fleet-wide rate.
    pub fn cache_totals(&self) -> Option<CacheStats> {
        self.shards
            .iter()
            .filter_map(|s| s.cache.as_ref())
            .fold(None, |acc, s| {
                let mut total = acc.unwrap_or_default();
                total.merge(s);
                Some(total)
            })
    }

    /// Fleet-level per-cause device traffic, folded over every shard
    /// that reported attribution (`None` when none did — i.e. no shard
    /// was traced). Counters sum across shards, so the totals row is
    /// the fleet's whole device traffic by provenance.
    pub fn cause_totals(&self) -> Option<CauseStats> {
        self.shards
            .iter()
            .filter_map(|s| s.cause.as_ref())
            .fold(None, |acc, s| {
                let mut total = acc.unwrap_or_default();
                total.merge(s);
                Some(total)
            })
    }

    /// Fleet-level background-maintenance accounting, folded over every
    /// shard that reported it (`None` when none did — i.e. maintenance
    /// ran inline). Counters and byte ledgers sum across shards, so the
    /// footer's write/space amplification is the fleet-wide figure.
    pub fn maint_totals(&self) -> Option<MaintStats> {
        self.shards
            .iter()
            .filter_map(|s| s.maint.as_ref())
            .fold(None, |acc, s| {
                let mut total = acc.unwrap_or_default();
                total.merge(s);
                Some(total)
            })
    }

    /// Deterministic plain-text rendering (byte-identical for
    /// byte-identical inputs): an aggregate header, one aligned table
    /// of all merged series (via [`render_series_table`]), the merged
    /// latency quantiles, and one line per shard.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} | clients={} shards={} ==\n",
            self.label,
            self.clients,
            self.shards.len()
        );
        out.push_str(&format!(
            "ops={} wa_a={:.4} out_of_space_shards={}\n",
            self.ops,
            self.wa_a(),
            self.out_of_space_shards()
        ));
        out.push_str(&render_series_table(
            &self.series.iter().collect::<Vec<_>>(),
        ));
        out.push_str(&format!(
            "latency ns: mean={:.0} p50={} p99={} max={}\n",
            self.latency.mean(),
            self.latency.quantile(0.5),
            self.latency.quantile(0.99),
            self.latency.max()
        ));
        if let Some(qd) = &self.queue_delay {
            out.push_str(&format!(
                "queue delay ns: mean={:.0} p50={} p99={} max={} (requests={})\n",
                qd.mean(),
                qd.quantile(0.5),
                qd.quantile(0.99),
                qd.max(),
                qd.count()
            ));
        }
        if let Some(imbalance) = self.load_imbalance() {
            out.push_str(&imbalance.render());
            out.push('\n');
        }
        if let Some(slo) = self.slo_totals() {
            out.push_str(&slo.render());
            out.push('\n');
        }
        if let Some(mt) = self.mt_totals() {
            out.push_str(&mt.render());
            out.push('\n');
        }
        if let Some(cache) = self.cache_totals() {
            out.push_str(&cache.render());
            out.push('\n');
        }
        if let Some(cause) = self.cause_totals() {
            out.push_str(&cause.render());
            out.push('\n');
        }
        if let Some(maint) = self.maint_totals() {
            out.push_str(&maint.render());
            out.push('\n');
        }
        for shard in &self.shards {
            out.push_str(&format!(
                "{}: ops={} app_bytes={} host_bytes={}{}{}{}{}{}{}{}{}{}\n",
                shard.name,
                shard.ops,
                shard.app_bytes,
                shard.host_bytes,
                match &shard.io_depth {
                    Some(io) => format!(
                        " qd[submitted={} max_in_flight={} mean={:.2}]",
                        io.submitted, io.max_in_flight, io.mean_in_flight
                    ),
                    None => String::new(),
                },
                match &shard.queue_delay {
                    Some(qd) => format!(" qdelay[p99={}]", qd.quantile(0.99)),
                    None => String::new(),
                },
                match &shard.load {
                    Some(load) => format!(" {}", load.render_compact()),
                    None => String::new(),
                },
                match &shard.slo {
                    Some(slo) => format!(" {}", slo.render_compact()),
                    None => String::new(),
                },
                match &shard.mt {
                    Some(mt) => format!(" {}", mt.render_compact()),
                    None => String::new(),
                },
                match &shard.cache {
                    Some(cache) => format!(" {}", cache.render_compact()),
                    None => String::new(),
                },
                match &shard.cause {
                    Some(cause) => format!(" {}", cause.render_compact()),
                    None => String::new(),
                },
                match &shard.maint {
                    Some(maint) => format!(" {}", maint.render_compact()),
                    None => String::new(),
                },
                if shard.out_of_space {
                    " OUT-OF-SPACE"
                } else {
                    ""
                }
            ));
        }
        out
    }

    /// The deepest in-flight depth any shard reported (`None` when every
    /// shard ran synchronously).
    pub fn max_in_flight(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.io_depth.map(|io| io.max_in_flight))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(name: &str, ops: u64, lat: &[u64], kops: &[f64]) -> ShardReport {
        let mut latency = LatencyHistogram::new();
        for &l in lat {
            latency.record(l);
        }
        let mut series = TimeSeries::new("kops");
        for (i, &v) in kops.iter().enumerate() {
            series.push((i as u64 + 1) * 600 * 1_000_000_000, v);
        }
        ShardReport {
            name: name.to_string(),
            ops,
            out_of_space: false,
            latency,
            app_bytes: ops * 100,
            host_bytes: ops * 250,
            io_depth: None,
            queue_delay: None,
            load: None,
            slo: None,
            mt: None,
            cache: None,
            cause: None,
            maint: None,
            series: vec![series],
        }
    }

    #[test]
    fn merge_aggregates_everything() {
        let r = RunReport::merge(
            "test",
            2,
            vec![
                shard("shard0", 10, &[1_000, 2_000], &[1.0, 2.0]),
                shard("shard1", 30, &[5_000], &[3.0, 4.0]),
            ],
        );
        assert_eq!(r.ops, 40);
        assert_eq!(r.latency.count(), 3);
        assert_eq!(r.latency.max(), 5_000);
        assert_eq!(r.series.len(), 1);
        assert_eq!(r.series_named("kops").expect("kops").values(), [4.0, 6.0]);
        assert!((r.wa_a() - 2.5).abs() < 1e-12);
        assert_eq!(r.out_of_space_shards(), 0);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let make = || {
            RunReport::merge(
                "lsm/SSD1",
                2,
                vec![
                    shard("shard0", 10, &[1_000], &[1.5]),
                    shard("shard1", 20, &[2_000], &[2.5]),
                ],
            )
        };
        let a = make().render();
        let b = make().render();
        assert_eq!(a, b, "same inputs must render byte-identically");
        assert!(a.contains("clients=2"));
        assert!(a.contains("shard0: ops=10"));
        assert!(a.contains("shard1: ops=20"));
        assert!(a.contains("ops=30"));
        assert!(a.contains("time(min)"));
        assert!(a.contains("kops"));
    }

    #[test]
    fn queue_depth_renders_only_when_present() {
        let plain = RunReport::merge("x", 1, vec![shard("shard0", 5, &[1_000], &[1.0])]);
        assert!(
            !plain.render().contains("qd["),
            "synchronous shards must render exactly as before"
        );
        assert_eq!(plain.max_in_flight(), None);

        let mut s = shard("shard0", 5, &[1_000], &[1.0]);
        s.io_depth = Some(QueueDepthSummary {
            submitted: 120,
            max_in_flight: 8,
            mean_in_flight: 5.25,
        });
        let deep = RunReport::merge("x", 1, vec![s]);
        let text = deep.render();
        assert!(text.contains("qd[submitted=120 max_in_flight=8 mean=5.25]"));
        assert_eq!(deep.max_in_flight(), Some(8));
    }

    #[test]
    fn queue_delay_and_load_render_only_when_present() {
        // Absent: the report must render exactly as before the serving
        // front-end existed (the conformance-suite contract).
        let plain = RunReport::merge("x", 1, vec![shard("shard0", 5, &[1_000], &[1.0])]);
        let plain_text = plain.render();
        assert!(!plain_text.contains("queue delay"));
        assert!(!plain_text.contains("shard load"));
        assert!(!plain_text.contains("qdelay["));
        assert!(!plain_text.contains("load["));
        assert!(plain.queue_delay.is_none());
        assert!(plain.queue_delay_cdf().is_none());
        assert!(plain.load_imbalance().is_none());

        // Present: merged queue-delay quantiles, per-shard tails, and
        // the imbalance footer all appear.
        let mut a = shard("shard0", 5, &[1_000], &[1.0]);
        let mut qd = LatencyHistogram::new();
        qd.record(10_000);
        qd.record(90_000);
        a.queue_delay = Some(qd);
        a.load = Some(ShardLoad {
            requests: 40,
            served: 40,
            dropped: 0,
            busy_ns: 600,
            span_ns: 1_000,
        });
        let mut b = shard("shard1", 5, &[1_000], &[1.0]);
        let mut qd = LatencyHistogram::new();
        qd.record(20_000);
        b.queue_delay = Some(qd);
        b.load = Some(ShardLoad {
            requests: 10,
            served: 10,
            dropped: 0,
            busy_ns: 200,
            span_ns: 1_000,
        });
        let served = RunReport::merge("x", 2, vec![a, b]);
        let text = served.render();
        assert!(text.contains("queue delay ns: mean="));
        assert!(text.contains("(requests=3)"));
        assert!(text.contains("shard load: req_ratio=4.00"));
        assert!(text.contains("qdelay[p99="));
        assert!(text.contains("load[req=40 served=40 util=0.6000]"));
        assert_eq!(
            served.queue_delay.as_ref().map(|qd| qd.count()),
            Some(3),
            "shard queue delays merge"
        );
        let cdf = served.queue_delay_cdf().expect("cdf present");
        assert_eq!(cdf.last().map(|&(_, f)| f), Some(1.0));
        assert!(served.queue_delay_quantile(0.99).expect("p99") >= 90_000);
        let imbalance = served.load_imbalance().expect("imbalance");
        assert_eq!(imbalance.max_requests, 40);
        assert_eq!(imbalance.min_requests, 10);
    }

    #[test]
    fn slo_stats_render_only_when_present() {
        // Absent: the report must render exactly as before admission
        // control existed (the slo_conformance-suite contract).
        let plain = RunReport::merge("x", 1, vec![shard("shard0", 5, &[1_000], &[1.0])]);
        let plain_text = plain.render();
        assert!(plain.slo_totals().is_none());
        assert!(!plain_text.contains("slo"));

        // Present: the fleet footer sums shard counters and each shard
        // line carries its compact accounting.
        let mut a = shard("shard0", 5, &[1_000], &[1.0]);
        a.slo = Some(SloStats {
            offered: 100,
            admitted: 90,
            rejected: 10,
            shed: 2,
            throttled: 0,
            served: 88,
            span_ns: 1_000_000_000,
        });
        let mut b = shard("shard1", 5, &[1_000], &[1.0]);
        b.slo = Some(SloStats {
            offered: 50,
            admitted: 50,
            rejected: 0,
            shed: 0,
            throttled: 0,
            served: 50,
            span_ns: 1_000_000_000,
        });
        let report = RunReport::merge("x", 2, vec![a, b]);
        let totals = report.slo_totals().expect("slo totals");
        assert_eq!(totals.offered, 150);
        assert_eq!(totals.rejected, 10);
        assert_eq!(totals.served, 138);
        assert_eq!(totals.span_ns, 1_000_000_000);
        let text = report.render();
        assert!(text
            .contains("slo: offered=150 admitted=140 rejected=10 shed=2 throttled=0 served=138"));
        assert!(text.contains("goodput=138.0/s"));
        assert!(text.contains("slo[adm=90 rej=10 shed=2 thr=0 att=0.8800]"));
        assert!(text.contains("slo[adm=50 rej=0 shed=0 thr=0 att=1.0000]"));
    }

    #[test]
    fn mt_stats_render_only_when_present() {
        // Absent: the report must render exactly as before multi-tenant
        // serving existed (the tenant_conformance-suite contract).
        let plain = RunReport::merge("x", 1, vec![shard("shard0", 5, &[1_000], &[1.0])]);
        let plain_text = plain.render();
        assert!(plain.mt_totals().is_none());
        assert!(!plain_text.contains("mt"));
        assert!(!plain_text.contains("tenants"));

        // Present: the fleet footer folds class lanes and tenant
        // ledgers, and each shard line carries its compact accounting.
        let mut a = shard("shard0", 5, &[1_000], &[1.0]);
        let mut ma = MtStats::new(1);
        {
            let lane = ma.class_mut(crate::mt::ReqClass::Interactive);
            lane.slo.offered = 20;
            lane.slo.admitted = 20;
            lane.slo.served = 20;
            lane.starve_max_ns = 4_000;
        }
        ma.tenants[0].offered = 20;
        ma.tenants[0].admitted = 20;
        a.mt = Some(ma);
        let mut b = shard("shard1", 5, &[1_000], &[1.0]);
        let mut mb = MtStats::new(1);
        {
            let lane = mb.class_mut(crate::mt::ReqClass::Batch);
            lane.slo.offered = 10;
            lane.slo.admitted = 6;
            lane.slo.throttled = 4;
            lane.slo.served = 6;
            lane.starve_max_ns = 9_000;
        }
        mb.tenants[0].offered = 10;
        mb.tenants[0].admitted = 6;
        mb.tenants[0].throttled = 4;
        b.mt = Some(mb);
        let report = RunReport::merge("x", 2, vec![a, b]);
        let totals = report.mt_totals().expect("mt totals");
        assert_eq!(
            totals.class(crate::mt::ReqClass::Interactive).slo.served,
            20
        );
        assert_eq!(totals.class(crate::mt::ReqClass::Batch).slo.throttled, 4);
        assert_eq!(totals.tenants[0].throttled, 4);
        let text = report.render();
        assert!(text.contains("mt: int[off=20 srv=20"));
        assert!(text.contains("bat[off=10 srv=6"));
        assert!(text.contains("tenants: t0[off=30 adm=26 thr=4]"));
        assert!(text.contains("mt[int=20/20]"));
        assert!(text.contains("mt[bat=6/10]"));
    }

    #[test]
    fn cache_stats_render_only_when_present() {
        // Absent: the report must render exactly as before the read-path
        // cache existed (the cache_conformance-suite contract).
        let plain = RunReport::merge("x", 1, vec![shard("shard0", 5, &[1_000], &[1.0])]);
        let plain_text = plain.render();
        assert!(plain.cache_totals().is_none());
        assert!(!plain_text.contains("cache"));

        // Present: the fleet footer sums shard counters and each shard
        // line carries its compact accounting.
        let mut a = shard("shard0", 5, &[1_000], &[1.0]);
        a.cache = Some(CacheStats {
            hits: 60,
            misses: 40,
            admissions: 30,
            rejections: 10,
            evictions: 8,
            bytes_saved: 240_000,
        });
        let mut b = shard("shard1", 5, &[1_000], &[1.0]);
        b.cache = Some(CacheStats {
            hits: 40,
            misses: 60,
            admissions: 50,
            rejections: 10,
            evictions: 42,
            bytes_saved: 160_000,
        });
        let report = RunReport::merge("x", 2, vec![a, b]);
        let totals = report.cache_totals().expect("cache totals");
        assert_eq!(totals.hits, 100);
        assert_eq!(totals.misses, 100);
        assert_eq!(totals.bytes_saved, 400_000);
        let text = report.render();
        assert!(text.contains(
            "cache: hits=100 misses=100 hit_rate=0.5000 admitted=80 rejected=20 \
             evicted=50 bytes_saved=400000"
        ));
        assert!(text.contains("cache[hit=60 miss=40 rate=0.6000 saved=240000]"));
        assert!(text.contains("cache[hit=40 miss=60 rate=0.4000 saved=160000]"));
    }

    #[test]
    fn cause_stats_render_only_when_present() {
        use ptsbench_trace::Cause;

        // Absent: the report must render exactly as before tracing
        // existed (the trace_conformance-suite contract).
        let plain = RunReport::merge("x", 1, vec![shard("shard0", 5, &[1_000], &[1.0])]);
        let plain_text = plain.render();
        assert!(plain.cause_totals().is_none());
        assert!(!plain_text.contains("cause"));

        // Present: the fleet footer folds shard attribution and each
        // shard line carries its compact breakdown.
        let mut a = shard("shard0", 5, &[1_000], &[1.0]);
        let mut sa = CauseStats::new();
        sa.note_write(Cause::Put, 4_096);
        sa.note_write(Cause::Compaction, 8_192);
        sa.note_read(Cause::Get, 2_048);
        sa.note_erases(Cause::Compaction, 3);
        a.cause = Some(sa);
        let mut b = shard("shard1", 5, &[1_000], &[1.0]);
        let mut sb = CauseStats::new();
        sb.note_write(Cause::Put, 1_024);
        sb.note_read(Cause::Get, 512);
        b.cause = Some(sb);
        let report = RunReport::merge("x", 2, vec![a, b]);
        let totals = report.cause_totals().expect("cause totals");
        assert_eq!(totals.total_bytes_written(), 13_312);
        assert_eq!(totals.total_bytes_read(), 2_560);
        assert_eq!(totals.total_erases(), 3);
        let text = report.render();
        assert!(text.contains(
            "cause: get[w=0 r=2560 e=0] put[w=5120 r=0 e=0] \
             compaction[w=8192 r=0 e=3] total[w=13312 r=2560 e=3]"
        ));
        assert!(text.contains("cause[get=0+2048 put=4096+0 compaction=8192+0]"));
        assert!(text.contains("cause[get=0+512 put=1024+0]"));
    }

    #[test]
    fn maint_stats_render_only_when_present() {
        // Absent: the report must render exactly as before background
        // maintenance existed (the maint_conformance-suite contract).
        let plain = RunReport::merge("x", 1, vec![shard("shard0", 5, &[1_000], &[1.0])]);
        let plain_text = plain.render();
        assert!(plain.maint_totals().is_none());
        assert!(!plain_text.contains("maint"));

        // Present: the fleet footer sums shard ledgers and each shard
        // line carries its compact accounting.
        let mut a = shard("shard0", 5, &[1_000], &[1.0]);
        a.maint = Some(MaintStats {
            jobs: 4,
            slices: 20,
            installs: 4,
            bytes_read: 1_000,
            bytes_written: 3_000,
            stall_ns: 500,
            app_bytes: 1_000,
            host_bytes: 4_000,
            live_bytes: 2_000,
            used_bytes: 3_000,
        });
        let mut b = shard("shard1", 5, &[1_000], &[1.0]);
        b.maint = Some(MaintStats {
            jobs: 2,
            slices: 10,
            installs: 2,
            bytes_read: 500,
            bytes_written: 1_000,
            stall_ns: 100,
            app_bytes: 1_000,
            host_bytes: 2_000,
            live_bytes: 2_000,
            used_bytes: 5_000,
        });
        let report = RunReport::merge("x", 2, vec![a, b]);
        let totals = report.maint_totals().expect("maint totals");
        assert_eq!(totals.jobs, 6);
        assert_eq!(totals.installs, 6);
        assert_eq!(totals.bytes_written, 4_000);
        assert!((totals.write_amp() - 3.0).abs() < 1e-12);
        assert!((totals.space_amp() - 2.0).abs() < 1e-12);
        let text = report.render();
        assert!(text.contains(
            "maint: jobs=6 installs=6 slices=30 bg_write=4000 bg_read=1500 stall_ns=600 \
             write_amp=3.0000 space_amp=2.0000"
        ));
        assert!(text.contains("maint[jobs=4 slices=20 stall=500 wa=4.0000 sa=1.5000]"));
        assert!(text.contains("maint[jobs=2 slices=10 stall=100 wa=2.0000 sa=2.5000]"));
    }

    #[test]
    fn imbalance_renders_deterministically() {
        let make = || {
            let mut s = shard("shard0", 5, &[1_000], &[1.0]);
            s.load = Some(ShardLoad {
                requests: 7,
                served: 7,
                dropped: 0,
                busy_ns: 333,
                span_ns: 1_000,
            });
            let mut qd = LatencyHistogram::new();
            qd.record(5_000);
            s.queue_delay = Some(qd);
            RunReport::merge("x", 1, vec![s]).render()
        };
        assert_eq!(make(), make(), "identical inputs, identical bytes");
    }

    #[test]
    fn out_of_space_shards_are_flagged() {
        let mut s = shard("shard0", 5, &[1_000], &[1.0]);
        s.out_of_space = true;
        let r = RunReport::merge("x", 1, vec![s]);
        assert_eq!(r.out_of_space_shards(), 1);
        assert!(r.render().contains("OUT-OF-SPACE"));
    }

    #[test]
    #[should_panic(expected = "same series")]
    fn misnamed_series_are_rejected() {
        let a = shard("a", 1, &[1_000], &[1.0]);
        let mut b = shard("b", 1, &[1_000], &[1.0]);
        b.series[0] = TimeSeries::new("other");
        RunReport::merge("x", 1, vec![a, b]);
    }
}
