//! Read-path cache accounting: hits, misses, admission decisions and
//! the device bytes a cache tier saved.
//!
//! Every caching layer in the stack — the shared TinyLFU block cache
//! (`ptsbench-cache`) and the B-tree's private pager — reports through
//! the same counters, so a report line reads identically regardless of
//! which tier produced it. The counters are exact (no sampling) and
//! deterministic: the same run renders the same `cache[...]` bytes.

/// One cache tier's accounting over a run. The byte-budget invariant
/// (`resident bytes <= budget`) is enforced by the cache itself and
/// property-tested in `tests/proptest_cache.rs`; these counters only
/// observe the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory (no device read issued).
    pub hits: u64,
    /// Lookups that fell through to the device.
    pub misses: u64,
    /// Blocks the admission gate accepted into the cache.
    pub admissions: u64,
    /// Blocks the TinyLFU gate turned away (their estimated frequency
    /// did not beat the eviction victim's).
    pub rejections: u64,
    /// Resident blocks evicted to make room.
    pub evictions: u64,
    /// Device bytes that hits avoided reading (the read-amplification
    /// saving the `fig_readamp` study plots).
    pub bytes_saved: u64,
}

impl CacheStats {
    /// Fraction of lookups served from memory (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Folds another tier's (or shard's) counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
        self.admissions = self.admissions.saturating_add(other.admissions);
        self.rejections = self.rejections.saturating_add(other.rejections);
        self.evictions = self.evictions.saturating_add(other.evictions);
        self.bytes_saved = self.bytes_saved.saturating_add(other.bytes_saved);
    }

    /// Deterministic compact rendering for per-shard report lines.
    pub fn render_compact(&self) -> String {
        format!(
            "cache[hit={} miss={} rate={:.4} saved={}]",
            self.hits,
            self.misses,
            self.hit_rate(),
            self.bytes_saved
        )
    }

    /// Deterministic one-line rendering for run-level report footers.
    pub fn render(&self) -> String {
        format!(
            "cache: hits={} misses={} hit_rate={:.4} admitted={} rejected={} \
             evicted={} bytes_saved={}",
            self.hits,
            self.misses,
            self.hit_rate(),
            self.admissions,
            self.rejections,
            self.evictions,
            self.bytes_saved
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CacheStats {
        CacheStats {
            hits: 75,
            misses: 25,
            admissions: 20,
            rejections: 5,
            evictions: 12,
            bytes_saved: 307200,
        }
    }

    #[test]
    fn hit_rate_divides_lookups() {
        assert!((stats().hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0, "idle cache");
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = stats();
        a.merge(&stats());
        assert_eq!(a.hits, 150);
        assert_eq!(a.misses, 50);
        assert_eq!(a.admissions, 40);
        assert_eq!(a.rejections, 10);
        assert_eq!(a.evictions, 24);
        assert_eq!(a.bytes_saved, 614400);
    }

    #[test]
    fn renders_are_deterministic_and_complete() {
        let a = stats().render();
        assert_eq!(a, stats().render());
        assert_eq!(
            a,
            "cache: hits=75 misses=25 hit_rate=0.7500 admitted=20 rejected=5 \
             evicted=12 bytes_saved=307200"
        );
        assert_eq!(
            stats().render_compact(),
            "cache[hit=75 miss=25 rate=0.7500 saved=307200]"
        );
    }
}
