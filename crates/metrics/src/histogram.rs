//! Log-bucketed latency histogram.
//!
//! Operation latencies span five orders of magnitude (cache-hit writes at
//! tens of microseconds to GC-stalled writes at hundreds of
//! milliseconds), so buckets grow geometrically. Memory is constant;
//! recording is O(1); quantiles are approximate to one bucket width
//! (~4%).

/// A latency histogram with geometric buckets (4% resolution).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// bucket i covers [BASE * GROWTH^i, BASE * GROWTH^(i+1)).
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

const BASE_NS: f64 = 100.0; // 100 ns floor
const GROWTH: f64 = 1.04;
/// 640 buckets cover up to ~2.2 simulated hours: queue delays at a
/// saturated front-end shard reach simulated *minutes*, far past the
/// ~53 s the original 512 buckets could resolve, and a tail metric
/// that clamps its own tail is useless.
const BUCKETS: usize = 640;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Records one latency observation in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        let idx = Self::bucket_of(ns);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    fn bucket_of(ns: u64) -> usize {
        if (ns as f64) <= BASE_NS {
            return 0;
        }
        let idx = ((ns as f64 / BASE_NS).ln() / GROWTH.ln()) as usize;
        idx.min(BUCKETS - 1)
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency (ns), or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Maximum observed latency (exact).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Minimum observed latency (exact).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Approximate `q`-quantile in nanoseconds (upper bucket edge).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return (BASE_NS * GROWTH.powi(i as i32 + 1)) as u64;
            }
        }
        self.max_ns
    }

    /// Fraction of observations at or below `ns` (1.0 for an empty
    /// histogram). Bucketed like everything else here: a bucket counts
    /// as "at most `ns`" only when its whole range is, so the answer is
    /// a lower bound within one bucket width (~4%). SLO-attainment
    /// estimates for runs *without* an admission policy — where no
    /// per-request conformance counter exists — read off this.
    pub fn fraction_at_most(&self, ns: u64) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        if ns >= self.max_ns {
            return 1.0;
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            // The final bucket absorbs everything past the nominal
            // range (`bucket_of` clamps), so its true upper edge is the
            // exact max — using the nominal edge would count clamped
            // observations larger than `ns` and break the lower-bound
            // guarantee. `ns < max_ns` here, so it never qualifies.
            let edge = if i == BUCKETS - 1 {
                self.max_ns
            } else {
                (BASE_NS * GROWTH.powi(i as i32 + 1)) as u64
            };
            if edge > ns {
                break;
            }
            cum += c;
        }
        cum as f64 / self.total as f64
    }

    /// The empirical CDF as `(upper bucket edge ns, cumulative
    /// fraction)` points, one per non-empty bucket. The final point's
    /// fraction is exactly 1.0 and always sits on the histogram's final
    /// bucket boundary — even when the top bucket itself is empty — so
    /// every CDF drawn from this bucketing (queue delays, phase
    /// breakdowns) shares an identical terminal x-grid point and can be
    /// overlaid without re-gridding. This is the distribution view the
    /// serving front-end renders for queue delays (tail-latency plots
    /// read directly off these points).
    pub fn cdf_points(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let edge = (BASE_NS * GROWTH.powi(i as i32 + 1)) as u64;
            out.push((edge, cum as f64 / self.total as f64));
        }
        let final_edge = (BASE_NS * GROWTH.powi(BUCKETS as i32)) as u64;
        match out.last_mut() {
            Some((edge, _)) if *edge < final_edge => out.push((final_edge, 1.0)),
            _ => {}
        }
        out
    }

    /// Merges another histogram into this one.
    ///
    /// Used by the concurrent harness to fold per-client histograms
    /// into one report, so it is overflow-safe (saturating counters)
    /// and treats an empty operand as the identity: merging an empty
    /// histogram never disturbs `min`/`max`, and merging *into* an
    /// empty histogram adopts the other side's extremes exactly.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.total == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }

    /// Clears all observations.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum_ns = 0;
        self.max_ns = 0;
        self.min_ns = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = LatencyHistogram::new();
        for ns in [1_000u64, 2_000, 3_000, 4_000, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100_000);
        assert_eq!(h.min(), 1_000);
        assert!((h.mean() - 22_000.0).abs() < 1.0);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1_000); // 1us .. 1ms uniform
        }
        let p50 = h.quantile(0.5) as f64;
        assert!(
            (p50 / 500_000.0 - 1.0).abs() < 0.10,
            "p50 {p50} off by >10%"
        );
        let p99 = h.quantile(0.99) as f64;
        assert!(
            (p99 / 990_000.0 - 1.0).abs() < 0.10,
            "p99 {p99} off by >10%"
        );
        assert!(h.quantile(1.0) >= 990_000);
    }

    #[test]
    fn extremes_clamp() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.1) >= 100);
    }

    #[test]
    fn cdf_points_are_monotone_and_end_at_one() {
        let mut h = LatencyHistogram::new();
        assert!(h.cdf_points().is_empty(), "empty histogram, empty CDF");
        for i in 1..=500u64 {
            h.record(i * 2_000);
        }
        let points = h.cdf_points();
        assert!(!points.is_empty());
        for pair in points.windows(2) {
            assert!(pair[0].0 < pair[1].0, "edges strictly increase");
            assert!(pair[0].1 <= pair[1].1, "fractions never decrease");
        }
        let last = points.last().unwrap();
        assert_eq!(last.1, 1.0, "CDF ends at exactly 1.0");
        // The terminal x is the histogram's final bucket boundary, even
        // though the top bucket is empty here, so every CDF drawn from
        // this bucketing shares the same closing grid point.
        let final_edge = (BASE_NS * GROWTH.powi(BUCKETS as i32)) as u64;
        assert_eq!(last.0, final_edge, "CDF closes on the final boundary");
        // Interior fractions still strictly increase (only the appended
        // terminal point may repeat the 1.0 reached by the data).
        for pair in points[..points.len() - 1].windows(2) {
            assert!(
                pair[0].1 < pair[1].1,
                "interior fractions strictly increase"
            );
        }
        // The CDF agrees with the quantile view at the median.
        let p50 = h.quantile(0.5);
        let at_median = points
            .iter()
            .find(|&&(edge, _)| edge >= p50)
            .expect("median bucket present");
        assert!((at_median.1 - 0.5).abs() < 0.1);
    }

    #[test]
    fn fraction_at_most_tracks_the_cdf() {
        let h = LatencyHistogram::new();
        assert_eq!(h.fraction_at_most(0), 1.0, "empty histogram misses nothing");

        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1_000); // 1us .. 1ms uniform
        }
        assert_eq!(h.fraction_at_most(h.max()), 1.0);
        assert_eq!(h.fraction_at_most(u64::MAX), 1.0);
        let half = h.fraction_at_most(500_000);
        assert!(
            (half - 0.5).abs() < 0.1,
            "half the observations sit below the midpoint: {half}"
        );
        assert!(h.fraction_at_most(500) < 0.01, "almost nothing below 500ns");
        // Monotone in the threshold.
        assert!(h.fraction_at_most(100_000) <= h.fraction_at_most(200_000));
    }

    #[test]
    fn fraction_at_most_stays_a_lower_bound_in_the_clamped_bucket() {
        // Observations past the nominal bucket range (~2.2 simulated
        // hours) clamp into the final bucket; a threshold between two
        // such observations must not count the bucket wholesale and
        // report 1.0 while larger observations exist.
        let mut h = LatencyHistogram::new();
        h.record(9_000_000_000_000); // ~2.5 h
        h.record(20_000_000_000_000); // ~5.6 h
        let f = h.fraction_at_most(10_000_000_000_000);
        assert!(
            f < 1.0,
            "an observation above the threshold exists, got {f}"
        );
        assert_eq!(h.fraction_at_most(20_000_000_000_000), 1.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1_000);
        b.record(9_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 9_000);
        assert_eq!(a.min(), 1_000);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = LatencyHistogram::new();
        a.record(2_000);
        a.record(5_000);
        let before = (a.count(), a.min(), a.max(), a.quantile(0.5));
        a.merge(&LatencyHistogram::new());
        assert_eq!((a.count(), a.min(), a.max(), a.quantile(0.5)), before);

        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.min(), 2_000, "merging into empty adopts min");
        assert_eq!(empty.max(), 5_000);
        // min() of a still-empty merged pair stays the 0 sentinel.
        let mut both = LatencyHistogram::new();
        both.merge(&LatencyHistogram::new());
        assert_eq!(both.min(), 0);
        assert_eq!(both.count(), 0);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(1_000);
        b.record(1_000);
        a.total = u64::MAX - 1;
        a.counts[LatencyHistogram::bucket_of(1_000)] = u64::MAX - 1;
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX, "totals saturate");
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX, "repeat merges stay saturated");
    }

    #[test]
    fn reset_clears() {
        let mut h = LatencyHistogram::new();
        h.record(5_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }
}
