//! Per-shard serving-load accounting and cross-shard imbalance.
//!
//! Hash routing (PR 3) lets a skewed key distribution spread over
//! shards; this module supplies the *measurement* half the ROADMAP
//! called for: how many requests each shard actually received, how busy
//! its engine was, and how unbalanced the fleet ended up. Contiguous vs
//! hashed sharding under Zipfian access can then be compared
//! quantitatively — the `fig_tail` experiment does exactly that.

/// One shard's serving-load accounting over a front-end run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardLoad {
    /// Requests the dispatcher routed to this shard — everything
    /// offered, i.e. served + dropped, plus any requests an active
    /// admission policy rejected or shed.
    pub requests: u64,
    /// Requests the shard's engine actually executed.
    pub served: u64,
    /// Requests dropped because the shard had run out of space.
    pub dropped: u64,
    /// Virtual nanoseconds the shard's engine spent servicing requests.
    pub busy_ns: u64,
    /// Virtual span the load is measured over (the configured duration
    /// of the measured phase).
    pub span_ns: u64,
}

impl ShardLoad {
    /// Fraction of the measured span the shard's engine was busy.
    /// Can exceed 1.0 when admitted requests drain past the end of the
    /// phase — exactly the overload signature the front-end exists to
    /// expose.
    pub fn utilization(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.span_ns as f64
        }
    }

    /// Deterministic compact rendering for per-shard report lines.
    pub fn render_compact(&self) -> String {
        format!(
            "load[req={} served={} util={:.4}]",
            self.requests,
            self.served,
            self.utilization()
        )
    }
}

/// Cross-shard imbalance summary: the spread of request counts and
/// engine utilizations over a fleet of shards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadImbalance {
    /// Highest per-shard request count.
    pub max_requests: u64,
    /// Lowest per-shard request count.
    pub min_requests: u64,
    /// Highest per-shard utilization.
    pub max_utilization: f64,
    /// Lowest per-shard utilization.
    pub min_utilization: f64,
    /// Mean per-shard utilization.
    pub mean_utilization: f64,
}

impl LoadImbalance {
    /// Folds per-shard loads into an imbalance summary (`None` for an
    /// empty fleet).
    pub fn from_shards(loads: &[ShardLoad]) -> Option<Self> {
        let first = loads.first()?;
        let mut s = Self {
            max_requests: first.requests,
            min_requests: first.requests,
            max_utilization: first.utilization(),
            min_utilization: first.utilization(),
            mean_utilization: 0.0,
        };
        let mut util_sum = 0.0;
        for load in loads {
            s.max_requests = s.max_requests.max(load.requests);
            s.min_requests = s.min_requests.min(load.requests);
            s.max_utilization = s.max_utilization.max(load.utilization());
            s.min_utilization = s.min_utilization.min(load.utilization());
            util_sum += load.utilization();
        }
        s.mean_utilization = util_sum / loads.len() as f64;
        Some(s)
    }

    /// Hottest-to-coldest request-count ratio (∞ when a shard received
    /// nothing — the fully starved case). 1.0 is perfect balance.
    pub fn request_ratio(&self) -> f64 {
        if self.min_requests == 0 {
            f64::INFINITY
        } else {
            self.max_requests as f64 / self.min_requests as f64
        }
    }

    /// Absolute utilization spread (`max - min`). 0.0 is perfect
    /// balance.
    pub fn utilization_spread(&self) -> f64 {
        self.max_utilization - self.min_utilization
    }

    /// Deterministic one-line rendering for run-level report footers.
    pub fn render(&self) -> String {
        format!(
            "shard load: req_ratio={:.2} (max={} min={}) util[min={:.4} mean={:.4} max={:.4}]",
            self.request_ratio(),
            self.max_requests,
            self.min_requests,
            self.min_utilization,
            self.mean_utilization,
            self.max_utilization
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(requests: u64, busy_ns: u64) -> ShardLoad {
        ShardLoad {
            requests,
            served: requests,
            dropped: 0,
            busy_ns,
            span_ns: 1_000,
        }
    }

    #[test]
    fn utilization_is_busy_over_span() {
        assert_eq!(load(10, 250).utilization(), 0.25);
        assert_eq!(ShardLoad::default().utilization(), 0.0, "empty span");
        assert!(load(10, 1_500).utilization() > 1.0, "overload exceeds 1");
    }

    #[test]
    fn imbalance_summarizes_the_fleet() {
        let fleet = [load(100, 900), load(25, 300), load(50, 600)];
        let s = LoadImbalance::from_shards(&fleet).expect("non-empty");
        assert_eq!(s.max_requests, 100);
        assert_eq!(s.min_requests, 25);
        assert_eq!(s.request_ratio(), 4.0);
        assert!((s.utilization_spread() - 0.6).abs() < 1e-12);
        assert!((s.mean_utilization - 0.6).abs() < 1e-12);
        assert!(LoadImbalance::from_shards(&[]).is_none());
    }

    #[test]
    fn starved_shards_read_as_infinite_ratio() {
        let s = LoadImbalance::from_shards(&[load(10, 100), load(0, 0)]).expect("fleet");
        assert!(s.request_ratio().is_infinite());
        assert!(s.render().contains("req_ratio=inf"));
    }

    #[test]
    fn renders_are_deterministic() {
        let fleet = [load(100, 900), load(25, 300)];
        let a = LoadImbalance::from_shards(&fleet).unwrap().render();
        let b = LoadImbalance::from_shards(&fleet).unwrap().render();
        assert_eq!(a, b);
        assert!(a.contains("req_ratio=4.00"));
        assert_eq!(
            load(10, 250).render_compact(),
            load(10, 250).render_compact()
        );
        assert!(load(10, 250).render_compact().contains("util=0.2500"));
    }
}
