//! SSD lifetime implications of write amplification (paper §4.2(ii):
//! end-to-end WA "should be used to quantify the I/O efficiency of a PTS
//! on flash, and its implications on the lifetime of an SSD").
//!
//! Flash endurance is rated in program/erase cycles per cell. The bytes
//! of *application* data a drive can absorb before wearing out is the
//! rated NAND volume divided by the end-to-end write amplification —
//! so a PTS with WA 25 consumes the drive twice as fast as one with
//! WA 12 at equal application throughput.

/// Endurance model of a drive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    /// Advertised capacity in bytes.
    pub capacity_bytes: u64,
    /// Rated program/erase cycles per cell (e.g. ~3000 for enterprise
    /// MLC/TLC of the paper's era, ~1000 for consumer QLC).
    pub pe_cycles: u32,
}

impl EnduranceModel {
    /// Total NAND bytes the medium can absorb (capacity x PE cycles).
    pub fn rated_nand_bytes(&self) -> u128 {
        self.capacity_bytes as u128 * self.pe_cycles as u128
    }

    /// Application bytes writable over the drive's life at the given
    /// end-to-end write amplification.
    pub fn application_bytes(&self, end_to_end_wa: f64) -> u128 {
        assert!(
            end_to_end_wa >= 1.0,
            "write amplification below 1 is impossible"
        );
        (self.rated_nand_bytes() as f64 / end_to_end_wa) as u128
    }

    /// Drive lifetime in days at a sustained application write rate
    /// (bytes/second) and end-to-end WA.
    pub fn lifetime_days(&self, app_bytes_per_sec: f64, end_to_end_wa: f64) -> f64 {
        assert!(app_bytes_per_sec > 0.0);
        self.application_bytes(end_to_end_wa) as f64 / app_bytes_per_sec / 86_400.0
    }

    /// Drive-writes-per-day the application may sustain for a target
    /// lifetime (the DWPD spec figure), given end-to-end WA.
    pub fn sustainable_dwpd(&self, end_to_end_wa: f64, lifetime_days: f64) -> f64 {
        assert!(lifetime_days > 0.0);
        self.application_bytes(end_to_end_wa) as f64 / self.capacity_bytes as f64 / lifetime_days
    }
}

/// Lifetime ratio between two systems at equal application write rates:
/// how much longer the drive lasts under system B than under system A.
pub fn lifetime_ratio(wa_a_end_to_end: f64, wa_b_end_to_end: f64) -> f64 {
    assert!(wa_a_end_to_end >= 1.0 && wa_b_end_to_end >= 1.0);
    wa_a_end_to_end / wa_b_end_to_end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p3600ish() -> EnduranceModel {
        EnduranceModel {
            capacity_bytes: 400_000_000_000,
            pe_cycles: 3000,
        }
    }

    #[test]
    fn rated_volume() {
        let m = p3600ish();
        assert_eq!(m.rated_nand_bytes(), 400_000_000_000u128 * 3000);
    }

    #[test]
    fn wa_divides_application_volume() {
        let m = p3600ish();
        let at_1 = m.application_bytes(1.0);
        let at_25 = m.application_bytes(25.0);
        assert!((at_1 as f64 / at_25 as f64 - 25.0).abs() < 0.01);
    }

    #[test]
    fn papers_headline_lifetime_gap() {
        // RocksDB end-to-end WA 25 vs WiredTiger 12 (paper §4.2): the
        // same drive lasts ~2.1x longer under WiredTiger.
        let ratio = lifetime_ratio(25.0, 12.0);
        assert!((ratio - 25.0 / 12.0).abs() < 1e-9);
        assert!(ratio > 2.0);
    }

    #[test]
    fn lifetime_days_at_sustained_rate() {
        let m = p3600ish();
        // 12 MB/s of application writes at WA 25.
        let days = m.lifetime_days(12e6, 25.0);
        let expect = (400e9 * 3000.0 / 25.0) / 12e6 / 86_400.0;
        assert!((days - expect).abs() / expect < 1e-9);
        // Same rate at WA 12 lasts proportionally longer.
        assert!(m.lifetime_days(12e6, 12.0) > days * 2.0);
    }

    #[test]
    fn dwpd_round_trip() {
        let m = p3600ish();
        // At WA 1 over 5 years, DWPD equals PE cycles / days.
        let dwpd = m.sustainable_dwpd(1.0, 5.0 * 365.0);
        assert!((dwpd - 3000.0 / (5.0 * 365.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn sub_unit_wa_rejected() {
        p3600ish().application_bytes(0.5);
    }
}
