//! # ptsbench-metrics — the measurement toolkit
//!
//! Implements the metrics and analyses of the paper's §3.3 and the
//! guidelines of §4:
//!
//! * [`timeseries`] — windowed time series (the paper reports 10-minute
//!   averages) with steady-state tail statistics;
//! * [`wa`] — the write-amplification algebra: application-level WA-A,
//!   user-level WA, device-level WA-D, and the end-to-end product that
//!   §4.2 argues must be reported;
//! * [`cusum`] — Page's CUSUM change detector, the §4.1 guideline for
//!   declaring steady state "when application throughput, WA-A and WA-D
//!   stop changing for long enough";
//! * [`cdf`] / [`histogram`] — distribution summaries (Fig 4, latency
//!   percentiles);
//! * [`cost`] — the storage-cost model behind the Fig 6c and Fig 8
//!   heatmaps (#drives = max(capacity-bound, throughput-bound));
//! * [`report`] — plain-text rendering of series, sweeps and heatmaps in
//!   the shape of the paper's figures;
//! * [`runreport`] — merged reports of concurrent sharded runs: per-client
//!   histograms/series folded into one deterministic [`RunReport`];
//! * [`load`] — per-shard serving-load accounting ([`ShardLoad`]) and
//!   cross-shard imbalance summaries ([`LoadImbalance`]) for comparing
//!   contiguous vs hashed sharding under skew;
//! * [`slo`] — SLO accounting under admission control ([`SloStats`]):
//!   admitted/rejected/shed counts, goodput and attainment, the axes of
//!   the goodput-vs-offered-load curves `fig_slo` plots;
//! * [`cache`] — read-path cache accounting ([`CacheStats`]): hits,
//!   misses, admission-gate decisions and device bytes saved, shared by
//!   the block cache and the B-tree pager;
//! * [`mt`] — multi-tenant serving accounting ([`MtStats`]): per-class
//!   ([`ReqClass`]) SLO counters, queue-delay distributions and
//!   starvation maxima, plus per-tenant token-bucket ledgers. The
//!   shared pacing primitive itself ([`RateBudget`], re-exported from
//!   `ptsbench-maint`) throttles tenants and background maintenance
//!   with one implementation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod cdf;
pub mod cost;
pub mod cusum;
pub mod histogram;
pub mod lifetime;
pub mod load;
pub mod mt;
pub mod report;
pub mod runreport;
pub mod slo;
pub mod timeseries;
pub mod wa;

pub use cache::CacheStats;
pub use cdf::Cdf;
pub use cost::{CostModel, DeploymentPlan, Heatmap};
pub use cusum::CusumDetector;
pub use histogram::LatencyHistogram;
pub use lifetime::EnduranceModel;
pub use load::{LoadImbalance, ShardLoad};
pub use mt::{ClassStats, MtStats, ReqClass, TenantId, TenantStats};
pub use ptsbench_maint::RateBudget;
pub use runreport::{RunReport, ShardReport};
pub use slo::SloStats;
pub use timeseries::TimeSeries;
pub use wa::WaBreakdown;
