//! Windowed time series.
//!
//! The paper reports metrics as averages over 10-minute windows (§3.3)
//! because PTSes exhibit large short-term variance. [`TimeSeries`] stores
//! `(time, value)` samples — one per window — and provides the summary
//! statistics the analysis needs (early vs steady-state means, the
//! "bursty vs sustained" comparison of Pitfall 1).

/// Nanoseconds (matches `ptsbench_ssd::Ns` without the dependency).
pub type Ns = u64;

/// A named series of windowed samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    name: String,
    points: Vec<(Ns, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample; times must be non-decreasing.
    pub fn push(&mut self, t: Ns, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be appended in order");
        }
        self.points.push((t, value));
    }

    /// All samples.
    pub fn points(&self) -> &[(Ns, f64)] {
        &self.points
    }

    /// Sample values only.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of all samples with `start <= t < end`.
    pub fn mean_between(&self, start: Ns, end: Ns) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= start && t < end)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Mean of the first `n` samples (the "short test" measurement of
    /// Pitfall 1).
    pub fn early_mean(&self, n: usize) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let n = n.min(self.points.len());
        Some(self.points[..n].iter().map(|&(_, v)| v).sum::<f64>() / n as f64)
    }

    /// Mean of the last `n` samples (the steady-state measurement).
    pub fn tail_mean(&self, n: usize) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let n = n.min(self.points.len());
        let start = self.points.len() - n;
        Some(self.points[start..].iter().map(|&(_, v)| v).sum::<f64>() / n as f64)
    }

    /// Max/min over the whole series.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Minimum value.
    pub fn min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    /// Merges another series into this one by summing values at equal
    /// sample positions.
    ///
    /// Built for *additive* per-client series (ops/s, device MB/s): the
    /// concurrent harness samples every client on the same window
    /// boundaries, so position `i` of every per-client series carries
    /// the same window-relative timestamp and the pointwise sum is the
    /// aggregate. If `other` is longer (this client died early), the
    /// extra points are appended verbatim — a missing window
    /// contributes zero. Timestamps must agree on the shared prefix.
    pub fn merge(&mut self, other: &TimeSeries) {
        for (i, &(t, v)) in other.points.iter().enumerate() {
            match self.points.get_mut(i) {
                Some((st, sv)) => {
                    assert_eq!(
                        *st, t,
                        "merged series must share window boundaries (index {i})"
                    );
                    *sv += v;
                }
                None => self.points.push((t, v)),
            }
        }
    }

    /// Relative variability of the last `n` samples:
    /// `(max - min) / mean` — the paper's Fig 10 throughput-swing measure.
    pub fn tail_relative_swing(&self, n: usize) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let n = n.min(self.points.len());
        let tail: Vec<f64> = self.points[self.points.len() - n..]
            .iter()
            .map(|&(_, v)| v)
            .collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        if mean == 0.0 {
            return Some(0.0);
        }
        let max = tail.iter().cloned().fold(f64::MIN, f64::max);
        let min = tail.iter().cloned().fold(f64::MAX, f64::min);
        Some((max - min) / mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new("t");
        for (i, &v) in vals.iter().enumerate() {
            s.push(i as Ns * 100, v);
        }
        s
    }

    #[test]
    fn push_and_query() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.last(), Some(4.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.values(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn early_vs_tail_mean_capture_pitfall_one() {
        // A decaying throughput curve: early mean far above tail mean.
        let s = series(&[10.0, 9.0, 8.0, 4.0, 3.0, 3.0, 3.0, 3.0]);
        let early = s.early_mean(2).expect("early");
        let tail = s.tail_mean(4).expect("tail");
        assert!((early - 9.5).abs() < 1e-9);
        assert!((tail - 3.0).abs() < 1e-9);
        assert!(early / tail > 3.0);
    }

    #[test]
    fn mean_between_filters_by_time() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean_between(100, 300), Some(2.5));
        assert_eq!(s.mean_between(1000, 2000), None);
    }

    #[test]
    fn tail_swing() {
        let s = series(&[5.0, 1.0, 2.0, 1.0, 2.0]);
        // Tail of 4: min 1, max 2, mean 1.5 => swing = 2/3.
        let swing = s.tail_relative_swing(4).expect("swing");
        assert!((swing - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_aligned_windows() {
        let mut a = series(&[1.0, 2.0, 3.0]);
        let b = series(&[10.0, 20.0, 30.0]);
        a.merge(&b);
        assert_eq!(a.values(), vec![11.0, 22.0, 33.0]);
        assert_eq!(a.points()[1].0, 100, "timestamps survive the merge");
    }

    #[test]
    fn merge_handles_unequal_lengths() {
        // A client that died early contributes zeros for its missing
        // windows; a longer partner's tail is adopted verbatim.
        let mut short = series(&[1.0, 1.0]);
        let long = series(&[5.0, 5.0, 5.0, 5.0]);
        short.merge(&long);
        assert_eq!(short.values(), vec![6.0, 6.0, 5.0, 5.0]);

        let mut long2 = series(&[5.0, 5.0, 5.0, 5.0]);
        long2.merge(&series(&[1.0, 1.0]));
        assert_eq!(long2.values(), vec![6.0, 6.0, 5.0, 5.0]);

        let mut empty = TimeSeries::new("e");
        empty.merge(&series(&[2.0, 4.0]));
        assert_eq!(empty.values(), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "window boundaries")]
    fn merge_rejects_misaligned_windows() {
        let mut a = series(&[1.0, 2.0]);
        let mut b = TimeSeries::new("b");
        b.push(7, 1.0);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new("t");
        s.push(100, 1.0);
        s.push(50, 2.0);
    }

    #[test]
    fn empty_series_behave() {
        let s = TimeSeries::new("e");
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
        assert_eq!(s.early_mean(3), None);
        assert_eq!(s.tail_mean(3), None);
        assert_eq!(s.max(), None);
    }
}
