//! Write-amplification algebra (paper §2.1.3, §2.2.3, §3.3, §4.2).
//!
//! Three layers of writes exist in the stack:
//!
//! ```text
//!   application KV bytes  --(PTS internal ops)-->  host bytes to device
//!                         --(FTL GC)-->            NAND bytes to flash
//! ```
//!
//! * **WA-A** (application-level) = host bytes / application bytes.
//! * **WA-D** (device-level) = NAND bytes / host bytes.
//! * **End-to-end WA** = WA-A × WA-D — the number §4.2(ii) argues must be
//!   used to judge I/O efficiency and flash lifetime.
//!
//! The paper's headline example: RocksDB WA-A 12 vs WiredTiger 10
//! (only 1.2× worse), but end-to-end 25 vs 12 (2.1× worse) once WA-D is
//! accounted for.

/// A full write-amplification decomposition at some instant or over some
/// window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaBreakdown {
    /// Application payload bytes written (key+value bytes of issued ops).
    pub app_bytes: u64,
    /// Bytes the host wrote to the device (as `iostat` would report).
    pub host_bytes: u64,
    /// Bytes programmed to NAND (as SMART would report).
    pub nand_bytes: u64,
}

impl WaBreakdown {
    /// Application-level write amplification (WA-A).
    pub fn wa_a(&self) -> f64 {
        ratio(self.host_bytes, self.app_bytes)
    }

    /// Device-level write amplification (WA-D).
    pub fn wa_d(&self) -> f64 {
        ratio(self.nand_bytes, self.host_bytes)
    }

    /// End-to-end write amplification (application → flash cells).
    pub fn end_to_end(&self) -> f64 {
        ratio(self.nand_bytes, self.app_bytes)
    }

    /// Windowed difference `self - earlier`.
    pub fn delta_since(&self, earlier: &WaBreakdown) -> WaBreakdown {
        WaBreakdown {
            app_bytes: self.app_bytes.saturating_sub(earlier.app_bytes),
            host_bytes: self.host_bytes.saturating_sub(earlier.host_bytes),
            nand_bytes: self.nand_bytes.saturating_sub(earlier.nand_bytes),
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// The paper's *user-level write amplification* (§3.3(iii)): device write
/// throughput divided by (KV-store throughput × KV pair size). Computed
/// from windowed rates instead of cumulative counters.
pub fn user_level_wa(device_write_bytes_per_s: f64, kv_ops_per_s: f64, kv_pair_bytes: u64) -> f64 {
    let app_rate = kv_ops_per_s * kv_pair_bytes as f64;
    if app_rate <= 0.0 {
        return 0.0;
    }
    device_write_bytes_per_s / app_rate
}

/// Space amplification (§2.1.4, §3.3(v)): bytes occupied on the drive
/// divided by the logical dataset size.
pub fn space_amplification(disk_used_bytes: u64, dataset_bytes: u64) -> f64 {
    ratio(disk_used_bytes, dataset_bytes)
}

/// The §4.1 rule of thumb: an SSD is assumed to have reached steady state
/// once cumulative host writes accrue to at least `multiplier` (default 3)
/// times the device capacity.
pub fn steady_state_by_host_writes(
    cumulative_host_bytes: u64,
    device_capacity_bytes: u64,
    multiplier: f64,
) -> bool {
    cumulative_host_bytes as f64 >= multiplier * device_capacity_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_matches_paper_example() {
        // RocksDB steady state: WA-A 12, WA-D ~2.1 => end-to-end ~25.
        let rocks = WaBreakdown {
            app_bytes: 100,
            host_bytes: 1200,
            nand_bytes: 2520,
        };
        assert!((rocks.wa_a() - 12.0).abs() < 1e-9);
        assert!((rocks.wa_d() - 2.1).abs() < 1e-9);
        assert!((rocks.end_to_end() - 25.2).abs() < 1e-9);
        // WiredTiger: WA-A 10, WA-D 1.2 => 12.
        let wt = WaBreakdown {
            app_bytes: 100,
            host_bytes: 1000,
            nand_bytes: 1200,
        };
        assert!((wt.end_to_end() - 12.0).abs() < 1e-9);
        // The paper's point: 1.2x WA-A gap becomes a 2.1x end-to-end gap.
        let gap_a = rocks.wa_a() / wt.wa_a();
        let gap_e2e = rocks.end_to_end() / wt.end_to_end();
        assert!(gap_a < 1.3);
        assert!(gap_e2e > 2.0);
    }

    #[test]
    fn zero_denominators_are_benign() {
        let w = WaBreakdown {
            app_bytes: 0,
            host_bytes: 0,
            nand_bytes: 0,
        };
        assert_eq!(w.wa_a(), 1.0);
        assert_eq!(w.wa_d(), 1.0);
        assert_eq!(w.end_to_end(), 1.0);
    }

    #[test]
    fn delta_since_windows() {
        let a = WaBreakdown {
            app_bytes: 100,
            host_bytes: 200,
            nand_bytes: 250,
        };
        let b = WaBreakdown {
            app_bytes: 200,
            host_bytes: 600,
            nand_bytes: 1050,
        };
        let d = b.delta_since(&a);
        assert_eq!(
            d,
            WaBreakdown {
                app_bytes: 100,
                host_bytes: 400,
                nand_bytes: 800
            }
        );
        assert!((d.wa_a() - 4.0).abs() < 1e-9);
        assert!((d.wa_d() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn user_level_wa_from_rates() {
        // 150 MB/s device writes at 3000 ops/s of 4016-byte pairs.
        let wa = user_level_wa(150e6, 3000.0, 4016);
        assert!((wa - 150e6 / (3000.0 * 4016.0)).abs() < 1e-9);
        assert_eq!(user_level_wa(150e6, 0.0, 4016), 0.0);
    }

    #[test]
    fn space_amp() {
        assert!((space_amplification(186, 100) - 1.86).abs() < 1e-9);
        assert_eq!(space_amplification(10, 0), 1.0);
    }

    #[test]
    fn steady_state_rule_of_thumb() {
        assert!(!steady_state_by_host_writes(2_000, 1_000, 3.0));
        assert!(steady_state_by_host_writes(3_000, 1_000, 3.0));
    }
}
