//! Plain-text rendering of experiment results in the shape of the
//! paper's figures: time-series tables, parameter-sweep bar tables, and
//! winner heatmaps.

use crate::cost::Heatmap;
use crate::timeseries::TimeSeries;

const MINUTE_NS: f64 = 60.0 * 1e9;

/// Renders aligned columns of one or more time series sharing a time
/// axis: `time(min)  <name>  <name> ...`.
pub fn render_series_table(series: &[&TimeSeries]) -> String {
    let mut out = String::new();
    if series.is_empty() {
        return out;
    }
    out.push_str(&format!("{:>10}", "time(min)"));
    for s in series {
        out.push_str(&format!("  {:>14}", truncate(s.name(), 14)));
    }
    out.push('\n');
    let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        let t = series
            .iter()
            .filter_map(|s| s.points().get(i).map(|&(t, _)| t))
            .next()
            .unwrap_or(0);
        out.push_str(&format!("{:>10.1}", t as f64 / MINUTE_NS));
        for s in series {
            match s.points().get(i) {
                Some(&(_, v)) => out.push_str(&format!("  {:>14.3}", v)),
                None => out.push_str(&format!("  {:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a parameter sweep: one labelled row per configuration, one
/// column per metric (the shape of Fig 5/6/7's bar charts).
pub fn render_sweep_table(
    title: &str,
    metric_names: &[&str],
    rows: &[(String, Vec<f64>)],
) -> String {
    let mut out = format!("== {title} ==\n");
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(8).max(8);
    out.push_str(&format!("{:>label_w$}", "config"));
    for m in metric_names {
        out.push_str(&format!("  {:>12}", truncate(m, 12)));
    }
    out.push('\n');
    for (label, values) in rows {
        out.push_str(&format!("{label:>label_w$}"));
        for v in values {
            out.push_str(&format!("  {v:>12.3}"));
        }
        out.push('\n');
    }
    out
}

/// Renders a winner heatmap like Fig 6c / Fig 8: `A` = first config
/// cheaper, `B` = second, `=` = tie. Throughput grows upward, dataset
/// size rightward, as in the paper.
pub fn render_heatmap(h: &Heatmap) -> String {
    let mut out = format!(
        "== {} (A) vs {} (B): fewer drives wins ==\n",
        h.first, h.second
    );
    for (y, row) in h.cells.iter().enumerate().rev() {
        out.push_str(&format!("{:>9.1} Kops |", h.throughput_axis[y] / 1_000.0));
        for cell in row {
            out.push_str(&format!(" {} ", cell.cell()));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>15}", "dataset:"));
    for &d in &h.dataset_axis {
        out.push_str(&format!("{:>3}", format_bytes_short(d)));
    }
    out.push('\n');
    out
}

/// Compact byte formatting ("1T", "500G", "64M").
pub fn format_bytes_short(bytes: u64) -> String {
    const K: u64 = 1024;
    if bytes >= K * K * K * K && bytes.is_multiple_of(K * K * K * K) {
        format!("{}T", bytes / (K * K * K * K))
    } else if bytes >= K * K * K {
        format!("{}G", bytes / (K * K * K))
    } else if bytes >= K * K {
        format!("{}M", bytes / (K * K))
    } else {
        format!("{bytes}B")
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn series_table_aligns() {
        let mut a = TimeSeries::new("tput");
        let mut b = TimeSeries::new("wa_d");
        for i in 0..3u64 {
            a.push(i * 60 * 1_000_000_000, 10.0 - i as f64);
            b.push(i * 60 * 1_000_000_000, 1.0 + i as f64 * 0.2);
        }
        let t = render_series_table(&[&a, &b]);
        assert!(t.contains("time(min)"));
        assert!(t.contains("tput"));
        assert!(t.contains("wa_d"));
        assert_eq!(t.lines().count(), 4);
        // Uneven lengths render '-'.
        b.push(200 * 1_000_000_000, 2.0);
        let t2 = render_series_table(&[&a, &b]);
        assert!(t2.contains('-'));
    }

    #[test]
    fn sweep_table_has_all_rows() {
        let t = render_sweep_table(
            "Fig 5a",
            &["tput", "wa_d"],
            &[
                ("rocks/0.25".to_string(), vec![3.3, 1.7]),
                ("tiger/0.25".to_string(), vec![1.0, 1.1]),
            ],
        );
        assert!(t.contains("Fig 5a"));
        assert!(t.contains("rocks/0.25"));
        assert!(t.contains("3.300"));
    }

    #[test]
    fn heatmap_renders() {
        const TB: u64 = 1 << 40;
        let a = CostModel {
            name: "A".into(),
            per_instance_ops: 3000.0,
            per_instance_data_bytes: TB,
        };
        let b = CostModel {
            name: "B".into(),
            per_instance_ops: 1000.0,
            per_instance_data_bytes: 2 * TB,
        };
        let h = Heatmap::compare(&a, &b, vec![TB, 4 * TB], vec![1000.0, 20_000.0]);
        let t = render_heatmap(&h);
        assert!(t.contains("fewer drives"));
        assert!(t.contains("Kops"));
        assert!(t.contains("1T"));
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes_short(1 << 40), "1T");
        assert_eq!(format_bytes_short(512 << 20), "512M");
        assert_eq!(format_bytes_short((3u64 << 30) + (512 << 20)), "3G");
        assert_eq!(format_bytes_short(100), "100B");
    }
}
