//! Empirical cumulative distribution functions.

/// An empirical CDF over `f64` samples, or a pre-computed `(x, y)` curve
/// (e.g. the LBA write-frequency CDF from the device trace, Fig 4).
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    /// Sorted samples (empirical mode) — empty when curve-backed.
    samples: Vec<f64>,
    /// Pre-computed curve points (curve mode).
    curve: Vec<(f64, f64)>,
}

impl Cdf {
    /// Builds an empirical CDF from samples (sorted internally).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in CDF samples"));
        Self {
            samples,
            curve: Vec::new(),
        }
    }

    /// Wraps a pre-computed non-decreasing `(x, y)` curve.
    pub fn from_curve(curve: Vec<(f64, f64)>) -> Self {
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0, "curve x must be non-decreasing");
            assert!(w[1].1 >= w[0].1 - 1e-12, "curve y must be non-decreasing");
        }
        Self {
            samples: Vec::new(),
            curve,
        }
    }

    /// P(X <= x).
    pub fn probability_at(&self, x: f64) -> f64 {
        if !self.curve.is_empty() {
            // Linear interpolation on the curve.
            if self.curve.is_empty() {
                return 0.0;
            }
            if x <= self.curve[0].0 {
                return self.curve[0].1;
            }
            for w in self.curve.windows(2) {
                let ((x0, y0), (x1, y1)) = (w[0], w[1]);
                if x <= x1 {
                    if x1 == x0 {
                        return y1;
                    }
                    return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
                }
            }
            return self.curve.last().expect("non-empty").1;
        }
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (q in `[0,1]`) of an empirical CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        if self.samples.is_empty() {
            return None;
        }
        let idx = ((self.samples.len() - 1) as f64 * q).round() as usize;
        Some(self.samples[idx])
    }

    /// Smallest x with P(X <= x) >= `y` on a curve-backed CDF (e.g.
    /// "what fraction of LBAs receives all the writes").
    pub fn x_at_probability(&self, y: f64) -> Option<f64> {
        if self.curve.is_empty() {
            return self.quantile(y);
        }
        for w in self.curve.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if y1 >= y {
                if (y1 - y0).abs() < 1e-15 {
                    return Some(x1);
                }
                return Some(x0 + (x1 - x0) * (y - y0) / (y1 - y0));
            }
        }
        self.curve.last().map(|&(x, _)| x)
    }

    /// The raw curve (curve-backed), or `None` for empirical CDFs.
    pub fn curve(&self) -> Option<&[(f64, f64)]> {
        if self.curve.is_empty() {
            None
        } else {
            Some(&self.curve)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_probabilities() {
        let c = Cdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.probability_at(0.5), 0.0);
        assert_eq!(c.probability_at(1.0), 0.25);
        assert_eq!(c.probability_at(2.5), 0.5);
        assert_eq!(c.probability_at(10.0), 1.0);
    }

    #[test]
    fn empirical_quantiles() {
        let c = Cdf::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(100.0));
        let median = c.quantile(0.5).expect("median");
        assert!((median - 50.0).abs() <= 1.0);
    }

    #[test]
    fn curve_interpolation() {
        let c = Cdf::from_curve(vec![(0.0, 0.0), (0.5, 1.0), (1.0, 1.0)]);
        assert!((c.probability_at(0.25) - 0.5).abs() < 1e-9);
        assert!((c.probability_at(0.75) - 1.0).abs() < 1e-9);
        // Where does the CDF first reach 1.0? At x=0.5 — the WiredTiger
        // signature of Fig 4.
        let x = c.x_at_probability(1.0).expect("x");
        assert!((x - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_curve_rejected() {
        Cdf::from_curve(vec![(0.0, 0.5), (1.0, 0.1)]);
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::from_samples(vec![]);
        assert_eq!(c.probability_at(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
    }
}
