//! Steady-state detection via Page's CUSUM (paper §4.1 guideline:
//! "Techniques such as CUSUM can be used to detect that the values of
//! these metrics do not change significantly for a long enough period of
//! time").
//!
//! The detector runs a standardized two-sided CUSUM over a window-averaged
//! series (throughput, WA-A, WA-D). A *change* is signalled when the
//! cumulative standardized drift exceeds the decision threshold `h`;
//! steady state is declared at the last change signal, provided at least
//! `min_stable` subsequent windows pass without another signal.

/// Two-sided CUSUM change detector.
#[derive(Debug, Clone, Copy)]
pub struct CusumDetector {
    /// Slack parameter `k` in standard deviations (drift allowance);
    /// typical 0.5.
    pub k: f64,
    /// Decision threshold `h` in standard deviations; typical 4–5.
    pub h: f64,
    /// Number of trailing change-free windows required to declare
    /// steady state.
    pub min_stable: usize,
}

impl Default for CusumDetector {
    fn default() -> Self {
        Self {
            k: 0.5,
            h: 5.0,
            min_stable: 3,
        }
    }
}

impl CusumDetector {
    /// Indices at which the series signals a change.
    ///
    /// The reference mean/σ are estimated incrementally from the samples
    /// seen since the last detected change (self-tuning restart CUSUM).
    pub fn change_points(&self, values: &[f64]) -> Vec<usize> {
        let mut changes = Vec::new();
        let mut start = 0usize;
        while start < values.len() {
            let mut mean = values[start];
            let mut m2 = 0.0f64;
            let mut count = 1.0f64;
            let mut s_hi = 0.0f64;
            let mut s_lo = 0.0f64;
            let mut signalled = None;
            for (i, &v) in values.iter().enumerate().skip(start + 1) {
                // Update running stats (Welford).
                count += 1.0;
                let delta = v - mean;
                mean += delta / count;
                m2 += delta * (v - mean);
                let sigma = (m2 / count).sqrt().max(mean.abs() * 0.01).max(1e-12);
                let z = (v - mean) / sigma;
                s_hi = (s_hi + z - self.k).max(0.0);
                s_lo = (s_lo - z - self.k).max(0.0);
                if s_hi > self.h || s_lo > self.h {
                    signalled = Some(i);
                    break;
                }
            }
            match signalled {
                Some(i) => {
                    changes.push(i);
                    start = i;
                }
                None => break,
            }
        }
        changes
    }

    /// Index of the first window from which the series is steady
    /// (no further change detected and at least `min_stable` stable
    /// windows follow), or `None` if the series never settles.
    pub fn steady_from(&self, values: &[f64]) -> Option<usize> {
        if values.len() < self.min_stable {
            return None;
        }
        let changes = self.change_points(values);
        let from = changes.last().map_or(0, |&c| c + 1);
        if values.len() - from >= self.min_stable {
            Some(from)
        } else {
            None
        }
    }

    /// Whether the tail of the series is steady.
    pub fn is_steady(&self, values: &[f64]) -> bool {
        self.steady_from(values).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_series_is_steady_from_start() {
        let d = CusumDetector::default();
        let vals: Vec<f64> = (0..20).map(|i| 5.0 + 0.01 * ((i % 3) as f64)).collect();
        assert_eq!(d.steady_from(&vals), Some(0));
        assert!(d.is_steady(&vals));
    }

    #[test]
    fn step_change_is_detected() {
        let d = CusumDetector::default();
        let mut vals = vec![10.0; 15];
        vals.extend(vec![3.0; 15]);
        let changes = d.change_points(&vals);
        assert!(!changes.is_empty(), "step change must be detected");
        let first = changes[0];
        assert!(
            (14..=18).contains(&first),
            "change near the step, got {first}"
        );
        // Steady state begins after the last change.
        let steady = d.steady_from(&vals).expect("settles after the step");
        assert!(steady >= 15);
    }

    #[test]
    fn decaying_throughput_settles_late() {
        // The Pitfall-1 shape: fast decay then flat tail.
        let d = CusumDetector::default();
        let mut vals: Vec<f64> = (0..15).map(|i| 11.0 * (0.8f64).powi(i)).collect();
        vals.extend(vec![0.45, 0.5, 0.48, 0.5, 0.49, 0.5, 0.51, 0.5]);
        let steady = d.steady_from(&vals).expect("eventually steady");
        assert!(
            steady >= 5,
            "must not declare steady during the decay, got {steady}"
        );
    }

    #[test]
    fn too_short_series_is_not_steady() {
        let d = CusumDetector::default();
        assert_eq!(d.steady_from(&[1.0]), None);
        assert!(!d.is_steady(&[1.0, 1.0]));
    }

    #[test]
    fn noise_does_not_trigger() {
        let d = CusumDetector::default();
        // +-2% noise around a constant.
        let vals: Vec<f64> = (0..40)
            .map(|i| 100.0 * (1.0 + 0.02 * (((i * 37) % 7) as f64 - 3.0) / 3.0))
            .collect();
        assert_eq!(
            d.change_points(&vals),
            vec![],
            "small noise must not signal"
        );
    }
}
