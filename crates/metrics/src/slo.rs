//! Per-shard SLO accounting: admission, shedding, goodput, attainment.
//!
//! The serving front-end's admission policies turn overload from an
//! unbounded histogram tail into explicit counters: how much load was
//! *offered* to each shard, how much the dispatcher admitted, how much
//! it turned away at submission (rejected) or dropped at dispatch
//! (shed), and how much of the served work met the configured deadline.
//! Goodput — conformant completions per second — is the quantity a
//! goodput-vs-offered-load curve plots: past saturation it plateaus
//! under a shedding policy and collapses without one (the `fig_slo`
//! experiment).

/// One shard's SLO accounting over a front-end run. All counters are
/// exact (no sampling); the invariants
/// `offered >= admitted + rejected` (out-of-space drops are neither)
/// and `served + shed <= admitted` hold by construction and are
/// property-tested in `crates/harness/tests/proptest_slo.rs`.
///
/// `served` *is* goodput under an active policy: admission is
/// deterministic, so every admitted-and-served request met its
/// admission-time guarantee (started within the queue-delay budget) —
/// the requests that would have missed it were rejected or shed
/// instead, and never consumed device time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SloStats {
    /// Requests the dispatcher routed to this shard.
    pub offered: u64,
    /// Requests admitted into the shard's dispatch queue.
    pub admitted: u64,
    /// Requests refused at submission (never queued, never touched the
    /// device).
    pub rejected: u64,
    /// Requests admitted but dropped at dispatch time, past their
    /// budget before the engine could start them (queued, but never
    /// touched the device).
    pub shed: u64,
    /// Requests turned away by their tenant's token-bucket quota before
    /// admission control even saw them (never queued, never touched the
    /// device). Zero unless tenant throttling is configured.
    pub throttled: u64,
    /// Requests the engine actually executed — each within its
    /// admission-time guarantee.
    pub served: u64,
    /// Virtual span the counters are measured over (the configured
    /// duration of the measured phase).
    pub span_ns: u64,
}

impl SloStats {
    /// Served (= SLO-conformant) completions per virtual second — the
    /// y-axis of a goodput-vs-offered-load curve.
    pub fn goodput_per_sec(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.served as f64 / (self.span_ns as f64 / 1e9)
        }
    }

    /// Offered requests per virtual second (the x-axis of the curve).
    pub fn offered_per_sec(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.offered as f64 / (self.span_ns as f64 / 1e9)
        }
    }

    /// Fraction of *offered* load that was served within the SLO —
    /// rejections and sheds count against attainment, because a
    /// turned-away client did not get service (1.0 for an idle shard).
    pub fn attainment(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.served as f64 / self.offered as f64
        }
    }

    /// Folds another shard's counters into this one (used by the
    /// run-level report). Spans are maximized, not summed: parallel
    /// shards measure the same virtual window, so fleet goodput is the
    /// sum of per-shard rates.
    pub fn merge(&mut self, other: &SloStats) {
        self.offered = self.offered.saturating_add(other.offered);
        self.admitted = self.admitted.saturating_add(other.admitted);
        self.rejected = self.rejected.saturating_add(other.rejected);
        self.shed = self.shed.saturating_add(other.shed);
        self.throttled = self.throttled.saturating_add(other.throttled);
        self.served = self.served.saturating_add(other.served);
        self.span_ns = self.span_ns.max(other.span_ns);
    }

    /// Deterministic compact rendering for per-shard report lines.
    pub fn render_compact(&self) -> String {
        format!(
            "slo[adm={} rej={} shed={} thr={} att={:.4}]",
            self.admitted,
            self.rejected,
            self.shed,
            self.throttled,
            self.attainment()
        )
    }

    /// Deterministic one-line rendering for run-level report footers.
    pub fn render(&self) -> String {
        format!(
            "slo: offered={} admitted={} rejected={} shed={} throttled={} served={} \
             goodput={:.1}/s attainment={:.4}",
            self.offered,
            self.admitted,
            self.rejected,
            self.shed,
            self.throttled,
            self.served,
            self.goodput_per_sec(),
            self.attainment()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SloStats {
        SloStats {
            offered: 100,
            admitted: 80,
            rejected: 20,
            shed: 10,
            throttled: 5,
            served: 70,
            span_ns: 2_000_000_000, // 2 virtual seconds
        }
    }

    #[test]
    fn rates_divide_by_the_virtual_span() {
        let s = stats();
        assert!((s.goodput_per_sec() - 35.0).abs() < 1e-12);
        assert!((s.offered_per_sec() - 50.0).abs() < 1e-12);
        assert!((s.attainment() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = SloStats::default();
        assert_eq!(s.goodput_per_sec(), 0.0);
        assert_eq!(s.offered_per_sec(), 0.0);
        assert_eq!(s.attainment(), 1.0, "an idle shard misses no SLO");
    }

    #[test]
    fn merge_sums_counters_but_not_spans() {
        let mut a = stats();
        let mut b = stats();
        b.span_ns = 3_000_000_000;
        a.merge(&b);
        assert_eq!(a.offered, 200);
        assert_eq!(a.admitted, 160);
        assert_eq!(a.rejected, 40);
        assert_eq!(a.shed, 20);
        assert_eq!(a.throttled, 10);
        assert_eq!(a.served, 140);
        assert_eq!(a.span_ns, 3_000_000_000, "spans overlap, they do not add");
    }

    #[test]
    fn renders_are_deterministic_and_complete() {
        let a = stats().render();
        assert_eq!(a, stats().render());
        assert_eq!(
            a,
            "slo: offered=100 admitted=80 rejected=20 shed=10 throttled=5 served=70 \
             goodput=35.0/s attainment=0.7000"
        );
        assert_eq!(
            stats().render_compact(),
            "slo[adm=80 rej=20 shed=10 thr=5 att=0.7000]"
        );
    }
}
