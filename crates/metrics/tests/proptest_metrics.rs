//! Property-based tests of the measurement toolkit: CDFs are monotone,
//! histogram quantiles are ordered and bounded, WA algebra composes,
//! and the cost model is monotone in its inputs.

use proptest::prelude::*;

use ptsbench_metrics::cost::CostModel;
use ptsbench_metrics::{Cdf, CusumDetector, LatencyHistogram, TimeSeries, WaBreakdown};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Empirical CDFs are monotone non-decreasing in x and bounded in
    /// [0, 1].
    #[test]
    fn cdf_is_monotone(mut samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let cdf = Cdf::from_samples(samples.clone());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let probes: Vec<f64> = (0..20).map(|i| i as f64 * 5e4).collect();
        let mut prev = 0.0;
        for &x in &probes {
            let p = cdf.probability_at(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev - 1e-12);
            prev = p;
        }
        prop_assert_eq!(cdf.probability_at(f64::MAX), 1.0);
    }

    /// Histogram quantiles are ordered, bracket min/max, and the mean
    /// lies between min and max.
    #[test]
    fn histogram_quantiles_ordered(values in proptest::collection::vec(1u64..10_000_000_000, 1..300)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let q = |p| h.quantile(p);
        prop_assert!(q(0.25) <= q(0.5));
        prop_assert!(q(0.5) <= q(0.9));
        prop_assert!(q(0.9) <= q(0.99));
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
        prop_assert!(h.mean() >= min as f64 && h.mean() <= max as f64);
        // Bucketed quantiles are within ~5% of the true range bounds.
        prop_assert!(q(1.0) >= max, "q(1.0)={} < max={}", q(1.0), max);
    }

    /// WA-A x WA-D == end-to-end WA for any byte counts.
    #[test]
    fn wa_composes(app in 1u64..1_000_000, a_mult in 1u64..40, d_mult_pct in 100u64..500) {
        let host = app * a_mult;
        let nand = host * d_mult_pct / 100;
        let wa = WaBreakdown { app_bytes: app, host_bytes: host, nand_bytes: nand };
        let product = wa.wa_a() * wa.wa_d();
        prop_assert!((product - wa.end_to_end()).abs() / wa.end_to_end() < 1e-9);
        prop_assert!(wa.wa_a() >= 1.0);
    }

    /// drives_needed is monotone in dataset size and target throughput,
    /// and never zero.
    #[test]
    fn cost_model_is_monotone(
        ops in 100.0f64..100_000.0,
        cap_gb in 1u64..1_000,
        d1 in 1u64..(1 << 44),
        d2 in 1u64..(1 << 44),
        t1 in 1.0f64..1e6,
        t2 in 1.0f64..1e6,
    ) {
        let m = CostModel {
            name: "m".into(),
            per_instance_ops: ops,
            per_instance_data_bytes: cap_gb << 30,
        };
        let (dlo, dhi) = (d1.min(d2), d1.max(d2));
        let (tlo, thi) = (t1.min(t2), t1.max(t2));
        prop_assert!(m.drives_needed(dlo, tlo) >= 1);
        prop_assert!(m.drives_needed(dhi, tlo) >= m.drives_needed(dlo, tlo));
        prop_assert!(m.drives_needed(dlo, thi) >= m.drives_needed(dlo, tlo));
    }

    /// CUSUM: a constant series never signals; appending a large step
    /// after a long stable prefix always does.
    #[test]
    fn cusum_detects_steps_not_constants(
        base in 1.0f64..1e4,
        len in 10usize..40,
        factor in 3.0f64..10.0,
    ) {
        let d = CusumDetector::default();
        let stable = vec![base; len];
        prop_assert!(d.change_points(&stable).is_empty(), "constant series must not signal");
        let mut stepped = stable.clone();
        stepped.extend(vec![base * factor; len]);
        prop_assert!(!d.change_points(&stepped).is_empty(), "large step must signal");
    }

    /// Time-series tail/early means always lie within [min, max].
    #[test]
    fn series_means_bounded(values in proptest::collection::vec(0.0f64..1e6, 1..100)) {
        let mut s = TimeSeries::new("t");
        for (i, &v) in values.iter().enumerate() {
            s.push(i as u64, v);
        }
        let min = s.min().expect("non-empty");
        let max = s.max().expect("non-empty");
        for n in [1, 2, values.len()] {
            let e = s.early_mean(n).expect("non-empty");
            let t = s.tail_mean(n).expect("non-empty");
            prop_assert!(e >= min - 1e-9 && e <= max + 1e-9);
            prop_assert!(t >= min - 1e-9 && t <= max + 1e-9);
        }
    }
}
