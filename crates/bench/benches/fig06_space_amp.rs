//! Figure 6 — space amplification and storage cost (Pitfall 5, §4.5):
//! disk utilization and space amplification across dataset sizes
//! (including the out-of-space points), plus the Fig 6c cost heatmap.

use ptsbench_bench::{banner, bench_options};
use ptsbench_core::pitfalls::p5_space_amp;

fn main() {
    banner(
        "Figure 6 (a-c)",
        "Pitfall 5: not accounting for space amplification",
    );
    let results = p5_space_amp::evaluate(&bench_options());
    let report = results.report();
    println!("{}", report.to_text());
    assert!(report.passed(), "Figure 6 phenomena did not reproduce");
}
