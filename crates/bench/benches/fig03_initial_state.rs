//! Figure 3 — trimmed vs preconditioned drive state (Pitfall 3, §4.3):
//! throughput and WA-D over time for both engines and both initial
//! states.

use ptsbench_bench::{banner, bench_options};
use ptsbench_core::pitfalls::p3_initial_state;

fn main() {
    banner(
        "Figure 3 (a-d)",
        "Pitfall 3: overlooking the internal state of the SSD",
    );
    let results = p3_initial_state::evaluate(&bench_options());
    let report = results.report();
    println!("{}", report.to_text());
    assert!(report.passed(), "Figure 3 phenomena did not reproduce");
}
