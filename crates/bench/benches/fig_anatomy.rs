//! Latency anatomy — beyond the paper: decomposing the serving tail
//! into engine phases via the flight recorder, for every registered
//! engine.
//!
//! `fig_tail` separates queue delay from engine service time;
//! this figure splits the service time itself. Every run is traced:
//! each request carries a `req.put`/`req.get` root span with the queue
//! wait, the engine op and every engine phase (WAL append, memtable
//! flush, compaction, block load, cache hit, segment decode, page
//! walk, ...) nested beneath it, and the device charges every host
//! byte to the cause scope that issued it. The table reports, per
//! quantile band of engine service time, the share of that time spent
//! in maintenance phases (flush/compaction/GC/checkpoint), in device
//! commands, and in cache hits. Phase shares may overlap (a device
//! command inside a compaction counts toward both) and queued device
//! commands proceed concurrently in virtual time, so the span sum can
//! exceed the enclosing op's wall time at queue depth 16 — columns
//! need not sum to 100%.
//!
//! The bench asserts the subsystem's headline guarantees:
//!
//! * the LSM's p99 put band is dominated by inline-maintenance stalls
//!   (>= half of its service time inside `lsm.flush`/`lsm.compaction`);
//! * the block cache shifts per-get `lsm.block_load` time into
//!   `lsm.cache_hit` marks;
//! * per-cause device bytes close exactly against the SMART host
//!   counters on every shard of every engine;
//! * traced runs are deterministic — byte-identical reports and
//!   identical phase rollups run-to-run.

use std::collections::BTreeMap;

use ptsbench_core::frontend::FrontendRun;
use ptsbench_core::registry::{EngineKind, EngineRegistry};
use ptsbench_core::runner::RunConfig;
use ptsbench_harness::{run_frontend_with_results, HarnessOutcome};
use ptsbench_metrics::report::render_sweep_table;
use ptsbench_ssd::{Ns, MINUTE};
use ptsbench_trace::OpBreakdown;
use ptsbench_workload::KeyDistribution;

/// 64 MiB total: four 16 MiB shards, the smallest SSD1 geometry.
const TOTAL_BYTES: u64 = 64 << 20;
const SHARDS: usize = 4;
/// The fig_tail fan-in maximum: enough closed-loop clients to keep
/// every shard saturated for the whole measured phase.
const FAN_IN: usize = 64;

/// Inline-maintenance phases, across all three engines.
const MAINT: [&str; 5] = [
    "lsm.flush",
    "lsm.compaction",
    "hashlog.gc",
    "hashlog.seal",
    "btree.checkpoint",
];
/// Device command spans.
const DEV: [&str; 2] = ["dev.read", "dev.write"];
/// Block/segment/page cache hit marks.
const CACHE: [&str; 3] = ["lsm.cache_hit", "btree.cache_hit", "hashlog.cache_hit"];

fn serve(engine: EngineKind, cache_bytes: u64, duration: u64) -> HarnessOutcome {
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine,
            device_bytes: TOTAL_BYTES,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            read_fraction: 0.5,
            duration,
            sample_window: duration / 4,
            cache_bytes,
            trace: true,
            ..RunConfig::default()
        },
        FAN_IN,
    );
    cfg.shards = SHARDS;
    run_frontend_with_results(&cfg).expect("frontend run")
}

/// Every request rollup across the fleet's flight recorders, in shard
/// order (deterministic).
fn breakdowns(outcome: &HarnessOutcome) -> Vec<OpBreakdown> {
    outcome
        .shard_results
        .iter()
        .filter_map(|r| r.recorder.as_ref())
        .flat_map(|rec| rec.lock().op_breakdowns())
        .collect()
}

/// `(span count, total ns)` per phase name, summed across the fleet.
fn fleet_phases(outcome: &HarnessOutcome) -> BTreeMap<&'static str, (u64, Ns)> {
    let mut agg: BTreeMap<&'static str, (u64, Ns)> = BTreeMap::new();
    for r in &outcome.shard_results {
        if let Some(rec) = &r.recorder {
            for (name, total, count) in rec.lock().time_by_name() {
                let e = agg.entry(name).or_insert((0, 0));
                e.0 += count;
                e.1 += total;
            }
        }
    }
    agg
}

/// Requests rooted at `root`, as `(engine service ns, rollup)` sorted
/// ascending by service time (the `op.*` span — queue wait excluded).
fn by_service<'a>(ops: &'a [OpBreakdown], root: &str) -> Vec<(Ns, &'a OpBreakdown)> {
    let op_phase = if root == "req.put" {
        "op.put"
    } else {
        "op.get"
    };
    let mut v: Vec<(Ns, &OpBreakdown)> = ops
        .iter()
        .filter(|o| o.root.name == root)
        .map(|o| (o.time_in(op_phase), o))
        .collect();
    v.sort_by_key(|&(s, _)| s);
    v
}

/// Total time in any of `names` across the band, as a share of the
/// band's total service time.
fn share(band: &[(Ns, &OpBreakdown)], total: Ns, names: &[&str]) -> f64 {
    let t: Ns = band
        .iter()
        .map(|&(_, o)| names.iter().map(|n| o.time_in(n)).sum::<Ns>())
        .sum();
    t as f64 / total.max(1) as f64
}

/// The requests at or above the `q`-quantile of service time, plus the
/// band's total service time.
fn band<'a, 'b>(sorted: &'b [(Ns, &'a OpBreakdown)], q: f64) -> (&'b [(Ns, &'a OpBreakdown)], Ns) {
    assert!(!sorted.is_empty(), "no requests to decompose");
    let idx = ((sorted.len() - 1) as f64 * q) as usize;
    let cut = sorted[idx].0;
    let start = sorted.partition_point(|&(s, _)| s < cut);
    let b = &sorted[start..];
    (b, b.iter().map(|&(s, _)| s).sum())
}

fn main() {
    ptsbench_hashlog::register();
    let quick = std::env::var("PTSBENCH_QUICK").is_ok_and(|v| v == "1");
    let duration = if quick { 20 * MINUTE } else { 40 * MINUTE };

    println!("================================================================");
    println!("ptsbench — fig_anatomy: engine-phase decomposition of the tail");
    println!(
        "{} MiB over {SHARDS} shards, Zipfian(0.99) 50:50, {FAN_IN} closed-loop \
         clients, {} simulated minutes, flight recorder on",
        TOTAL_BYTES >> 20,
        duration / MINUTE
    );
    println!("================================================================");

    let mut lsm_outcome = None;
    for engine in EngineRegistry::all() {
        let outcome = serve(engine, 0, duration);
        let ops = breakdowns(&outcome);
        let mut rows = Vec::new();
        for root in ["req.put", "req.get"] {
            let sorted = by_service(&ops, root);
            if sorted.is_empty() {
                continue;
            }
            for (label, q) in [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)] {
                let (b, total) = band(&sorted, q);
                rows.push((
                    format!("{}/{}/{}", engine.label(), root, label),
                    vec![
                        b.len() as f64,
                        total as f64 / b.len().max(1) as f64 / 1e6,
                        100.0 * share(b, total, &MAINT),
                        100.0 * share(b, total, &DEV),
                        100.0 * share(b, total, &CACHE),
                    ],
                ));
            }
        }
        println!();
        println!(
            "{}",
            render_sweep_table(
                &format!("fig_anatomy — {}", engine.name()),
                &["n", "svc(ms)", "maint %", "dev %", "cache %"],
                &rows,
            )
        );

        // Per-cause device bytes close exactly against the SMART host
        // counters, shard by shard, for every engine.
        for (i, r) in outcome.shard_results.iter().enumerate() {
            let cause = r.cause.expect("traced runs attribute device traffic");
            assert_eq!(
                cause.total_bytes_written(),
                r.host_bytes_written,
                "{engine} shard{i}: per-cause written bytes must sum to host writes"
            );
            assert_eq!(
                cause.total_bytes_read(),
                r.host_bytes_read,
                "{engine} shard{i}: per-cause read bytes must sum to host reads"
            );
        }
        println!("per-cause bytes == host bytes on every shard — ok");

        if engine == EngineKind::lsm() {
            lsm_outcome = Some(outcome);
        }
    }

    // The LSM's slowest puts are inline-maintenance stalls.
    let lsm = lsm_outcome.expect("the LSM is a built-in engine");
    let ops = breakdowns(&lsm);
    let sorted = by_service(&ops, "req.put");
    let (b, total) = band(&sorted, 0.99);
    let stall = share(b, total, &["lsm.flush", "lsm.compaction"]);
    println!();
    println!(
        "lsm puts >= p99 ({} reqs): {:.1}% of service time inside \
         lsm.flush/lsm.compaction spans",
        b.len(),
        100.0 * stall
    );
    assert!(
        stall >= 0.5,
        "the LSM p99 must be dominated by inline-maintenance stalls: {stall:.3}"
    );

    // The block cache shifts block-load time into cache hits.
    let cached = serve(EngineKind::lsm(), 2 << 20, duration);
    let off = fleet_phases(&lsm);
    let on = fleet_phases(&cached);
    let gets = |m: &BTreeMap<&str, (u64, Ns)>| m.get("op.get").map_or(0, |e| e.0).max(1);
    let load_per_get_off = off.get("lsm.block_load").map_or(0, |e| e.1) as f64 / gets(&off) as f64;
    let load_per_get_on = on.get("lsm.block_load").map_or(0, |e| e.1) as f64 / gets(&on) as f64;
    let hits_off = off.get("lsm.cache_hit").map_or(0, |e| e.0);
    let hits_on = on.get("lsm.cache_hit").map_or(0, |e| e.0);
    println!(
        "lsm block cache: block_load/get {:.0} ns -> {:.0} ns, cache_hit marks {} -> {}",
        load_per_get_off, load_per_get_on, hits_off, hits_on
    );
    assert_eq!(hits_off, 0, "no cache phase may fire with the cache off");
    assert!(hits_on > 0, "a Zipfian read phase must hit the cache");
    assert!(
        load_per_get_on < load_per_get_off,
        "the cache must shift block-load time into hits: \
         {load_per_get_off:.0} vs {load_per_get_on:.0} ns/get"
    );

    // Headline guarantee: traced runs are deterministic — the report
    // text and the full phase rollup are identical run-to-run.
    let again = serve(EngineKind::lsm(), 0, duration);
    assert_eq!(
        lsm.report.render(),
        again.report.render(),
        "traced serving reports must render byte-identically"
    );
    assert_eq!(
        fleet_phases(&lsm),
        fleet_phases(&again),
        "phase rollups must be identical run-to-run"
    );
    println!("determinism: byte-identical traced reports across runs — ok");
}
