//! Figures 7 and 8 — software over-provisioning (Pitfall 6, §4.6):
//! throughput and WA-D with/without a reserved 25% OP partition, and
//! the no-OP vs extra-OP storage-cost heatmap.

use ptsbench_bench::{banner, bench_options};
use ptsbench_core::pitfalls::p6_overprovisioning;

fn main() {
    banner(
        "Figures 7-8",
        "Pitfall 6: overlooking SSD software over-provisioning",
    );
    let results = p6_overprovisioning::evaluate(&bench_options());
    let report = results.report();
    println!("{}", report.to_text());
    assert!(report.passed(), "Figure 7/8 phenomena did not reproduce");
}
