//! Tail latency at the serving front-end — beyond the paper: p50/p99
//! queueing delay vs client fan-in (1 → 64) over a fixed fleet of 4
//! shards, contiguous vs hashed key routing, for every registered
//! engine.
//!
//! Clients are open-loop Poisson sources, so the offered load grows
//! with fan-in and does not back off when the server queues. The
//! Zipfian key distribution concentrates load on a contiguous hot
//! prefix: range partitioning saturates the shard that owns it (p99
//! queue delay explodes with fan-in) while hash routing spreads the
//! same load and keeps the tail bounded. Queue delay is measured
//! separately from engine/device service time via the front-end's
//! `submitted_at`/`issued_at`/`done_at` timestamps — the layer of the
//! serving path the paper's single-threaded methodology cannot see.
//!
//! The bench asserts the front-end's headline guarantees: monotone
//! tail growth under contiguous routing, a bounded tail under hashed
//! routing, and byte-identical reports run-to-run.

use ptsbench_core::frontend::FrontendRun;
use ptsbench_core::registry::{EngineKind, EngineRegistry};
use ptsbench_core::runner::RunConfig;
use ptsbench_core::sharded::Sharding;
use ptsbench_harness::run_frontend;
use ptsbench_metrics::report::render_sweep_table;
use ptsbench_metrics::runreport::RunReport;
use ptsbench_ssd::{MINUTE, SECOND};
use ptsbench_workload::{ArrivalSpec, KeyDistribution};

/// 64 MiB total: four 16 MiB shards, the smallest SSD1 geometry.
const TOTAL_BYTES: u64 = 64 << 20;
const SHARDS: usize = 4;
const FAN_SWEEP: [usize; 4] = [1, 4, 16, 64];

fn config(engine: EngineKind, clients: usize, duration: u64) -> FrontendRun {
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine,
            device_bytes: TOTAL_BYTES,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            read_fraction: 0.5,
            duration,
            sample_window: duration / 4,
            ..RunConfig::default()
        },
        clients,
    );
    cfg.shards = SHARDS;
    cfg
}

/// Engines differ ~10x in per-op service time (the B+Tree's CPU budget
/// dwarfs the LSM's), so a fixed arrival rate would either starve the
/// fast engines of queueing or bury the slow ones under every routing.
/// A single closed-loop client probes the fleet's mean service time,
/// and the sweep offers ~45% of aggregate fleet capacity at the top
/// fan-in: enough to saturate the Zipfian hot shard under contiguous
/// routing (~85% of traffic onto a quarter of the capacity), with
/// comfortable headroom when hashing spreads it. Deterministic, like
/// everything else here.
fn calibrated_interarrival(engine: EngineKind, duration: u64) -> u64 {
    let report = run_frontend(&config(engine, 1, duration)).expect("calibration run");
    let (busy, served) = report
        .shards
        .iter()
        .filter_map(|s| s.load)
        .fold((0u64, 0u64), |(b, n), l| (b + l.busy_ns, n + l.served));
    let mean_service = busy / served.max(1);
    let raw = (*FAN_SWEEP.last().unwrap() as u64 * mean_service) as f64 / (0.45 * SHARDS as f64);
    // Round to 100 ms so report labels stay readable.
    ((raw as u64).div_ceil(SECOND / 10)).max(1) * (SECOND / 10)
}

fn serve(
    engine: EngineKind,
    sharding: Sharding,
    clients: usize,
    duration: u64,
    interarrival: u64,
) -> RunReport {
    let mut cfg = config(engine, clients, duration);
    cfg.sharding = sharding;
    cfg.arrival = ArrivalSpec::OpenPoisson {
        mean_interarrival_ns: interarrival,
    };
    run_frontend(&cfg).expect("frontend run")
}

fn main() {
    ptsbench_hashlog::register();
    let quick = std::env::var("PTSBENCH_QUICK").is_ok_and(|v| v == "1");
    let duration = if quick { 20 * MINUTE } else { 40 * MINUTE };

    println!("================================================================");
    println!("ptsbench — fig_tail: queueing delay vs fan-in (serving front-end)");
    println!(
        "{} MiB over {SHARDS} shards, Zipfian(0.99), open-loop Poisson (rate \
         calibrated per engine), {} simulated minutes, all registered engines",
        TOTAL_BYTES >> 20,
        duration / MINUTE
    );
    println!("================================================================");

    for engine in EngineRegistry::all() {
        let interarrival = calibrated_interarrival(engine, duration);
        println!();
        println!(
            "{}: calibrated mean interarrival {:.1} s/client",
            engine.label(),
            interarrival as f64 / SECOND as f64
        );
        let mut rows = Vec::new();
        let mut tails = std::collections::BTreeMap::new();
        for sharding in [Sharding::Contiguous, Sharding::Hashed] {
            let name = match sharding {
                Sharding::Contiguous => "contig",
                Sharding::Hashed => "hashed",
            };
            for clients in FAN_SWEEP {
                let report = serve(engine, sharding, clients, duration, interarrival);
                let p99 = report.queue_delay_quantile(0.99).expect("queue delay");
                tails.insert((name, clients), p99);
                let imbalance = report.load_imbalance().expect("load");
                rows.push((
                    format!("{}/{}/fan{}", engine.label(), name, clients),
                    vec![
                        report.ops as f64,
                        report.queue_delay_quantile(0.5).expect("p50") as f64 / 1e6,
                        p99 as f64 / 1e6,
                        report.latency.quantile(0.99) as f64 / 1e6,
                        imbalance.request_ratio(),
                        imbalance.max_utilization,
                    ],
                ));
            }
        }
        println!();
        println!(
            "{}",
            render_sweep_table(
                &format!("fig_tail — {}", engine.name()),
                &[
                    "ops",
                    "qd p50(ms)",
                    "qd p99(ms)",
                    "svc p99(ms)",
                    "req ratio",
                    "max util"
                ],
                &rows,
            )
        );

        // Contiguous routing: the hot shard's tail grows monotonically
        // with fan-in once load is non-trivial.
        assert!(
            tails[&("contig", 4)] <= tails[&("contig", 16)]
                && tails[&("contig", 16)] < tails[&("contig", 64)],
            "{engine}: contiguous p99 queue delay must grow with fan-in: {tails:?}"
        );
        // Hashed routing: the same offered load, bounded tail.
        assert!(
            tails[&("contig", 64)] > 10 * tails[&("hashed", 64)],
            "{engine}: hashed routing must bound the saturated tail: {tails:?}"
        );
        assert!(
            tails[&("hashed", 64)] < 2 * MINUTE,
            "{engine}: hashed p99 queue delay out of bounds: {tails:?}"
        );
    }

    // Headline guarantee: the serving report is deterministic.
    let a = serve(
        EngineKind::lsm(),
        Sharding::Hashed,
        16,
        20 * MINUTE,
        20 * SECOND,
    )
    .render();
    let b = serve(
        EngineKind::lsm(),
        Sharding::Hashed,
        16,
        20 * MINUTE,
        20 * SECOND,
    )
    .render();
    assert_eq!(a, b, "serving reports must render byte-identically");
    println!("determinism: byte-identical reports across runs — ok");
}
