//! Client scaling — beyond the paper: aggregate throughput of every
//! registered engine under the concurrent sharded harness, sweeping
//! 1 → 8 client threads over a fixed total simulated capacity.
//!
//! Each client drives its own shared-nothing shard (own device slice,
//! own engine instance, own key range), synchronized on the
//! virtual-time barrier. Because the total capacity is fixed, the sweep
//! isolates the effect of request parallelism — the dimension Roh et
//! al. show flash SSDs need before revealing their internal
//! parallelism, and the axis the paper's single-threaded methodology
//! leaves unexplored.
//!
//! The bench also asserts the harness's headline guarantee: with fixed
//! seeds the merged report renders byte-identically run-to-run.

use ptsbench_core::registry::EngineRegistry;
use ptsbench_core::runner::RunConfig;
use ptsbench_core::sharded::ShardedRun;
use ptsbench_harness::run_sharded;
use ptsbench_metrics::report::render_sweep_table;
use ptsbench_ssd::MINUTE;

/// Total simulated capacity, fixed across the sweep. 128 MiB divides
/// into eight 16 MiB shards — the SSD1 geometry floor (8 erase
/// blocks/shard).
const TOTAL_BYTES: u64 = 128 << 20;

const CLIENT_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn main() {
    ptsbench_hashlog::register();
    let quick = std::env::var("PTSBENCH_QUICK").is_ok_and(|v| v == "1");
    let duration = if quick { 20 * MINUTE } else { 60 * MINUTE };

    println!("================================================================");
    println!("ptsbench — client scaling (concurrent sharded harness)");
    println!(
        "total simulated capacity {} MiB, {} simulated minutes, \
         {} clients sweep, all registered engines",
        TOTAL_BYTES >> 20,
        duration / MINUTE,
        CLIENT_SWEEP.len()
    );
    println!("================================================================");

    let mut rows = Vec::new();
    for engine in EngineRegistry::all() {
        let mut base_kops = None;
        for clients in CLIENT_SWEEP {
            let sharded = ShardedRun::new(
                RunConfig {
                    engine,
                    device_bytes: TOTAL_BYTES,
                    duration,
                    sample_window: duration / 4,
                    ..RunConfig::default()
                },
                clients,
            );
            let report = run_sharded(&sharded).expect("sharded run");
            let kops = report.steady_mean("kv_kops").unwrap_or(0.0);
            let speedup = kops / *base_kops.get_or_insert(kops.max(f64::MIN_POSITIVE));
            rows.push((
                format!("{}/c{clients}", engine.label()),
                vec![
                    clients as f64,
                    kops,
                    speedup,
                    report.wa_a(),
                    report.out_of_space_shards() as f64,
                ],
            ));
        }
    }
    println!(
        "{}",
        render_sweep_table(
            "Aggregate steady throughput vs client count (fixed total capacity)",
            &["clients", "kops", "speedup", "wa_a", "oos"],
            &rows,
        )
    );

    // Scaling must be visible for every engine: 8 clients beat 1 client
    // on aggregate steady throughput.
    for engine in EngineRegistry::all() {
        let label = engine.label();
        let one = rows
            .iter()
            .find(|(l, _)| l == &format!("{label}/c1"))
            .expect("c1 row")
            .1[1];
        let eight = rows
            .iter()
            .find(|(l, _)| l == &format!("{label}/c8"))
            .expect("c8 row")
            .1[1];
        assert!(
            eight > 2.0 * one,
            "{label}: 8 clients must scale aggregate throughput ({eight:.2} vs {one:.2} Kops)"
        );
    }

    // Reproducibility: the merged report is byte-identical across runs.
    let sharded = |seed| {
        let mut s = ShardedRun::new(
            RunConfig {
                device_bytes: TOTAL_BYTES,
                duration: 20 * MINUTE,
                sample_window: 5 * MINUTE,
                seed,
                ..RunConfig::default()
            },
            4,
        );
        s.shards = 4;
        s
    };
    let a = run_sharded(&sharded(7))
        .expect("determinism run a")
        .render();
    let b = run_sharded(&sharded(7))
        .expect("determinism run b")
        .render();
    assert_eq!(a, b, "fixed seeds must render byte-identical reports");
    println!("determinism check: two seeded runs rendered byte-identically");
}
