//! Figure 11 — additional workloads (§4.8): the 50:50 read:write mix
//! and the 128-byte-value variant, each on trimmed and preconditioned
//! drives, showing Pitfalls 1–3 hold beyond the default workload.

use ptsbench_bench::{banner, bench_options};
use ptsbench_core::pitfalls::workloads;

fn main() {
    banner(
        "Figure 11 (a-d)",
        "additional workloads: pitfalls generalize",
    );
    let results = workloads::evaluate(&bench_options());
    let report = results.report();
    println!("{}", report.to_text());
    assert!(report.passed(), "Figure 11 phenomena did not reproduce");
}
