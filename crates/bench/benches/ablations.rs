//! Ablation studies of the design choices DESIGN.md calls out: GC
//! victim-selection policy, filesystem allocation policy, WAL recycling,
//! bloom filters, and erase-superblock size. Each ablation isolates one
//! knob on an otherwise fixed stack and reports the metric it moves.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ptsbench_lsm::{LsmDb, LsmOptions};
use ptsbench_ssd::{DeviceConfig, DeviceProfile, GcPolicy, SharedSsd, Ssd};
use ptsbench_vfs::{AllocPolicy, Vfs, VfsOptions};

const DEVICE_BYTES: u64 = 48 << 20;

fn device(profile: DeviceProfile) -> (SharedSsd, Vfs) {
    device_with(profile, VfsOptions::default())
}

fn device_with(profile: DeviceProfile, opts: VfsOptions) -> (SharedSsd, Vfs) {
    let ssd = Ssd::new(DeviceConfig::from_profile(profile, DEVICE_BYTES)).into_shared();
    let vfs = Vfs::whole_device(ssd.clone(), opts);
    (ssd, vfs)
}

/// Loads a ~50%-of-capacity dataset and runs updates through an LSM;
/// returns (WA-D, WA-A, device reads per op). `skew` raises update
/// locality (0.0 = uniform; higher concentrates on low keys).
fn lsm_workout(
    ssd: &SharedSsd,
    vfs: Vfs,
    lsm_opts: LsmOptions,
    updates: u32,
    skew: f64,
) -> (f64, f64, f64) {
    let mut db = LsmDb::open(vfs, lsm_opts).expect("open");
    let keys = 7_000u32;
    for i in 0..keys {
        db.put(format!("key{i:08}").as_bytes(), &[0u8; 3400])
            .expect("load");
    }
    db.flush().expect("flush");
    ssd.lock().reset_observability();
    let app0 = db.stats().app_bytes_written;
    let mut rng = SmallRng::seed_from_u64(77);
    for _ in 0..updates {
        let u: f64 = rng.gen();
        let i = (u.powf(1.0 + skew) * keys as f64) as u32;
        db.put(
            format!("key{:08}", i.min(keys - 1)).as_bytes(),
            &[1u8; 3400],
        )
        .expect("update");
    }
    db.flush().expect("flush");
    let smart = ssd.lock().smart();
    let app = (db.stats().app_bytes_written - app0) as f64;
    let host = smart.host_pages_written as f64 * 4096.0;
    (
        smart.wa_d(),
        host / app,
        smart.host_pages_read as f64 / updates as f64,
    )
}

fn ablate_gc_policy() {
    println!("-- ablation: GC victim-selection policy (preconditioned LSM) --");
    println!("{:>14} {:>8} {:>8}", "policy", "WA-D", "WA-A");
    for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit] {
        let mut profile = DeviceProfile::ssd1();
        profile.gc_policy = policy;
        let (ssd, vfs) = device(profile);
        ssd.lock().precondition(3).expect("precondition");
        // Skewed updates create hot/cold separation work for the cleaner.
        let (wa_d, wa_a, _) = lsm_workout(
            &ssd,
            vfs,
            LsmOptions::scaled_to_partition(DEVICE_BYTES),
            40_000,
            2.0,
        );
        println!("{policy:>14?} {wa_d:>8.2} {wa_a:>8.2}");
    }
}

fn ablate_alloc_policy() {
    println!("\n-- ablation: filesystem allocation policy (trimmed LSM) --");
    println!("{:>14} {:>8} {:>10}", "policy", "WA-D", "untouched");
    for policy in [
        AllocPolicy::NextFit,
        AllocPolicy::FirstFit,
        AllocPolicy::BestFit,
    ] {
        let (ssd, vfs) = device_with(
            DeviceProfile::ssd1(),
            VfsOptions {
                policy,
                ..VfsOptions::default()
            },
        );
        ssd.lock().enable_trace();
        let (wa_d, _, _) = lsm_workout(
            &ssd,
            vfs,
            LsmOptions::scaled_to_partition(DEVICE_BYTES),
            40_000,
            0.0,
        );
        let untouched = ssd
            .lock()
            .write_trace()
            .expect("traced")
            .untouched_fraction();
        println!("{policy:>14?} {wa_d:>8.2} {untouched:>10.2}");
    }
    println!("(NextFit roves the LBA space; FirstFit concentrates — the paper's");
    println!(" Fig 4 contrast is an allocation-policy phenomenon as much as an engine one)");
}

fn ablate_wal_recycling() {
    println!("\n-- ablation: WAL recycling vs churn (preconditioned LSM) --");
    println!("{:>14} {:>8} {:>8}", "mode", "WA-D", "WA-A");
    for recycle in [true, false] {
        let (ssd, vfs) = device(DeviceProfile::ssd1());
        ssd.lock().precondition(3).expect("precondition");
        let opts = LsmOptions {
            recycle_wal: recycle,
            ..LsmOptions::scaled_to_partition(DEVICE_BYTES)
        };
        let (wa_d, wa_a, _) = lsm_workout(&ssd, vfs, opts, 40_000, 0.0);
        let label = if recycle { "recycled" } else { "churned" };
        println!("{label:>14} {wa_d:>8.2} {wa_a:>8.2}");
    }
}

fn ablate_bloom_filters() {
    println!("\n-- ablation: bloom filters (read amplification on absent keys) --");
    println!("{:>14} {:>14}", "bits/key", "dev reads/get");
    for bits in [0u32, 5, 10] {
        let (ssd, vfs) = device(DeviceProfile::ssd1());
        let opts = LsmOptions {
            bloom_bits_per_key: bits,
            ..LsmOptions::scaled_to_partition(DEVICE_BYTES)
        };
        let mut db = LsmDb::open(vfs, opts).expect("open");
        // Load only even keys; odd keys are absent but inside every
        // table's key range (so blooms, not range checks, must filter).
        for i in (0..12_000u32).step_by(2) {
            db.put(format!("key{i:08}").as_bytes(), &[0u8; 1000])
                .expect("put");
        }
        db.flush().expect("flush");
        ssd.lock().reset_observability();
        let lookups = 2_000u32;
        for i in 0..lookups {
            let absent = format!("key{:08}", i * 2 + 1);
            let _ = db.get(absent.as_bytes()).expect("get");
        }
        let reads = ssd.lock().smart().host_pages_read as f64 / lookups as f64;
        println!("{bits:>14} {reads:>14.2}");
    }
}

fn ablate_superblock_size() {
    println!("\n-- ablation: erase-superblock size (stream mixing, trimmed LSM) --");
    println!("{:>14} {:>8}", "pages/block", "WA-D");
    for ppb in [128u32, 256, 512, 1024] {
        let mut profile = DeviceProfile::ssd1();
        profile.pages_per_block = ppb;
        let (ssd, vfs) = device(profile);
        let (wa_d, _, _) = lsm_workout(
            &ssd,
            vfs,
            LsmOptions::scaled_to_partition(DEVICE_BYTES),
            40_000,
            0.0,
        );
        println!("{ppb:>14} {wa_d:>8.2}");
    }
    println!("(larger superblocks mix more file streams per erase unit -> higher WA-D;");
    println!(" this is the scaling knob DESIGN.md calibrates to the paper's WA-D ~2.1)");
}

fn main() {
    println!("================================================================");
    println!(
        "ptsbench — ablation studies ({} MiB simulated SSD1)",
        DEVICE_BYTES >> 20
    );
    println!("================================================================");
    ablate_gc_policy();
    ablate_alloc_policy();
    ablate_wal_recycling();
    ablate_bloom_filters();
    ablate_superblock_size();
}
