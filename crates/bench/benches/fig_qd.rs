//! Queue-depth sweep — beyond the paper: aggregate read throughput of
//! every registered engine as the I/O submission queue deepens from 1
//! (the paper's synchronous methodology) to 32.
//!
//! Each probe builds a stack, bulk-loads the default dataset, then
//! drives a fixed, seeded set of range scans and measures the device
//! read throughput over the virtual time they take. The scan streams
//! are identical across queue depths, so the sweep isolates exactly
//! one variable: how many commands the engine may keep in flight. This
//! is the dimension Roh et al. show flash needs before it reveals its
//! internal parallelism — the LSM batches its scan chunk loads across
//! tables, the hash log issues its per-entry point reads in parallel,
//! and the B+Tree (untouched by the async API) serves as the
//! synchronous control.
//!
//! The bench also asserts the redesign's compatibility guarantee: a
//! queue-depth-1 harness run renders **byte-identically** to one with
//! an untouched (pre-queue) configuration.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ptsbench_core::measure::{build_stack, bulk_load};
use ptsbench_core::registry::{EngineKind, EngineRegistry, EngineTuning};
use ptsbench_core::runner::RunConfig;
use ptsbench_core::sharded::ShardedRun;
use ptsbench_harness::run_sharded;
use ptsbench_metrics::report::render_sweep_table;
use ptsbench_ssd::{IoDepthStats, MINUTE};
use ptsbench_workload::encode_key;

/// 64 MiB stand-in for the 400 GB reference drive.
const DEVICE_BYTES: u64 = 64 << 20;

const QD_SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// One probe's measurements (reference-scale rates).
struct Probe {
    read_mbps: f64,
    kentries_per_sec: f64,
    io: IoDepthStats,
}

/// Builds a stack + engine at `qd`, loads the default dataset, runs
/// `scans` seeded range scans of `scan_len` entries, and measures the
/// read path. Fully deterministic per (engine, qd).
fn scan_probe(engine: EngineKind, qd: usize, scans: u64, scan_len: usize) -> Probe {
    let cfg = RunConfig {
        engine,
        device_bytes: DEVICE_BYTES,
        queue_depth: qd,
        ..RunConfig::default()
    };
    let stack = build_stack(&cfg).expect("stack");
    let tuning = EngineTuning::for_device(cfg.device_bytes).with_queue_depth(qd);
    let mut system = engine
        .open(stack.vfs.clone(), &tuning)
        .expect("open engine");
    let workload = cfg.workload();
    bulk_load(system.as_mut(), &workload).expect("bulk load");
    system.flush().expect("flush");
    stack.shared.lock().reset_observability();

    // The same seed for every depth: identical scan starts, so the only
    // variable across the sweep is the queue depth itself.
    let mut rng = SmallRng::seed_from_u64(0xF1D0);
    let t0 = stack.clock.now();
    let mut entries = 0u64;
    let mut key = Vec::new();
    for _ in 0..scans {
        let start = rng.gen_range(0..workload.num_keys.saturating_sub(scan_len as u64));
        encode_key(workload.key_base + start, workload.key_size, &mut key);
        let cursor = system.scan(&key, None, scan_len).expect("scan");
        for item in cursor {
            item.expect("scan item");
            entries += 1;
        }
    }
    let elapsed_secs = (stack.clock.now() - t0) as f64 / 1e9;
    assert!(elapsed_secs > 0.0, "scans must consume virtual time");
    let dev = stack.shared.lock();
    let read_bytes = dev.smart().host_pages_read as f64 * stack.page_size as f64;
    Probe {
        read_mbps: read_bytes * cfg.scale() / elapsed_secs / 1e6,
        kentries_per_sec: entries as f64 * cfg.scale() / elapsed_secs / 1e3,
        io: dev.io_depth_stats(),
    }
}

fn main() {
    ptsbench_hashlog::register();
    let quick = std::env::var("PTSBENCH_QUICK").is_ok_and(|v| v == "1");
    let (scans, scan_len) = if quick { (8, 384) } else { (16, 512) };

    println!("================================================================");
    println!("ptsbench — fig_qd (queue-depth sweep, asynchronous I/O API)");
    println!(
        "simulated drive: {} MiB stand-in for a 400 GB-class device; \
         {} seeded scans x {} entries per probe, QD 1 -> 32",
        DEVICE_BYTES >> 20,
        scans,
        scan_len
    );
    println!("================================================================");

    let mut rows = Vec::new();
    let mut probes: Vec<(EngineKind, Vec<Probe>)> = Vec::new();
    for engine in EngineRegistry::all() {
        let mut per_engine = Vec::new();
        for qd in QD_SWEEP {
            let p = scan_probe(engine, qd, scans, scan_len);
            rows.push((
                format!("{}/qd{qd}", engine.label()),
                vec![
                    qd as f64,
                    p.read_mbps,
                    p.kentries_per_sec,
                    p.io.max_in_flight as f64,
                    p.io.mean_in_flight(),
                ],
            ));
            per_engine.push(p);
        }
        probes.push((engine, per_engine));
    }
    println!(
        "{}",
        render_sweep_table(
            "Read throughput vs submission queue depth (fixed scan stream)",
            &["qd", "read_MB/s", "kentries/s", "qd_max", "qd_mean"],
            &rows,
        )
    );

    // Scaling assertions: the two async-capable engines must gain read
    // throughput from QD=1 to QD=8; the hash log (parallel point reads)
    // must gain a lot.
    for (engine, per_engine) in &probes {
        let label = engine.label();
        let qd1 = &per_engine[0];
        let qd8 = &per_engine[3];
        assert_eq!(qd1.io.submitted, 0, "{label}: QD=1 stays synchronous");
        match label {
            "lsm" => {
                assert!(
                    qd8.kentries_per_sec > 1.2 * qd1.kentries_per_sec,
                    "{label}: QD=8 must lift scan read throughput: {:.2} vs {:.2} kentries/s",
                    qd8.kentries_per_sec,
                    qd1.kentries_per_sec
                );
                assert!(
                    qd8.io.max_in_flight > 1,
                    "{label}: queue must actually fill"
                );
            }
            "hashlog" => {
                assert!(
                    qd8.read_mbps > 2.0 * qd1.read_mbps
                        && qd8.kentries_per_sec > 2.0 * qd1.kentries_per_sec,
                    "{label}: QD=8 parallel point reads must scale: {:.2} vs {:.2} MB/s",
                    qd8.read_mbps,
                    qd1.read_mbps
                );
                assert!(qd8.io.max_in_flight > 4, "{label}: queue must run deep");
            }
            _ => {} // btree: the synchronous control, no claim
        }
    }
    println!("scaling check: QD=8 beats QD=1 on lsm and hashlog read throughput");

    // Determinism: an identical probe reproduces bit-identical rates.
    let a = scan_probe(EngineKind::lsm(), 8, scans, scan_len);
    let b = scan_probe(EngineKind::lsm(), 8, scans, scan_len);
    assert_eq!(a.read_mbps.to_bits(), b.read_mbps.to_bits());
    assert_eq!(a.io, b.io);
    println!("determinism check: identical QD=8 probes measured bit-identically");

    // Compatibility: a QD=1 harness run renders byte-identically to an
    // untouched (pre-queue) configuration.
    let harness_cfg = |qd: Option<usize>| {
        let mut base = RunConfig {
            device_bytes: DEVICE_BYTES,
            duration: 20 * MINUTE,
            sample_window: 5 * MINUTE,
            ..RunConfig::default()
        };
        if let Some(qd) = qd {
            base.queue_depth = qd;
        }
        ShardedRun::new(base, 2)
    };
    let untouched = run_sharded(&harness_cfg(None)).expect("run").render();
    let qd1 = run_sharded(&harness_cfg(Some(1))).expect("run").render();
    assert_eq!(
        untouched, qd1,
        "QD=1 must render byte-identically to the pre-queue configuration"
    );
    assert!(!untouched.contains("qd["));
    println!("compatibility check: QD=1 report diffs empty against the default renderer");
}
