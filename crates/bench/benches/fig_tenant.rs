//! Multi-tenant isolation under a batch aggressor — beyond the paper:
//! the serving front-end's dispatch disciplines and tenant quotas,
//! measured as the interactive tenant's p99 queue delay against its
//! isolated baseline.
//!
//! The paper evaluates tree structures under *one* workload at a time;
//! a production fleet serves several at once, and the steady-state
//! lesson carries over: what separates configurations is how the
//! latency-sensitive tenant's tail behaves while a bulk tenant holds
//! the device at saturation for minutes. FIFO lets the aggressor's
//! open-loop backlog swallow the interactive tail (≥10× the isolated
//! baseline); weighted-fair dispatch holds it within 2× while staying
//! work-conserving; a token-bucket quota caps the aggressor at exactly
//! `rate·T + burst` admissions with no discipline at all; and strict
//! priority with age promotion bounds how long the lowest class can
//! starve.
//!
//! The bench asserts those five claims and that multi-tenant reports
//! render byte-identically run-to-run (the CI determinism check runs
//! the sibling example twice and diffs). `PTSBENCH_QUICK=1` shortens
//! the simulated duration.

use ptsbench_core::frontend::{DispatchDiscipline, FrontendRun, TenantQuota, TenantSpec};
use ptsbench_core::registry::EngineKind;
use ptsbench_core::runner::RunConfig;
use ptsbench_core::ReqClass;
use ptsbench_harness::run_frontend;
use ptsbench_metrics::mt::MtStats;
use ptsbench_metrics::report::render_sweep_table;
use ptsbench_metrics::runreport::RunReport;
use ptsbench_ssd::{Ns, MILLISECOND, MINUTE, SECOND};
use ptsbench_workload::{ArrivalSpec, KeyDistribution};

/// 64 MiB total: four 16 MiB shards, the smallest SSD1 geometry.
const TOTAL_BYTES: u64 = 64 << 20;
const SHARDS: usize = 4;
/// WFQ class weights: interactive 8, batch 1, background 1.
const WEIGHTS: [u32; 3] = [8, 1, 1];
/// Strict-priority promotion age for the background-starvation run.
const PROMOTE_AFTER: Ns = 2 * SECOND;
/// Closed-loop batch aggressor fleet size in the strict-priority run.
const BATCH_CLIENTS: usize = 16;

fn config(clients: usize, duration: Ns) -> FrontendRun {
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine: EngineKind::lsm(),
            device_bytes: TOTAL_BYTES,
            read_fraction: 1.0,
            distribution: KeyDistribution::Zipfian { theta: 0.9 },
            duration,
            sample_window: duration / 2,
            ..RunConfig::default()
        },
        clients,
    );
    cfg.shards = SHARDS;
    cfg
}

/// Mean per-op service time of the fleet, probed with one zero-think
/// closed-loop client (no queueing, pure service). Deterministic.
fn calibrate_mean_service(duration: Ns) -> Ns {
    let report = run_frontend(&config(1, duration)).expect("calibration run");
    let (busy, served) = report
        .shards
        .iter()
        .filter_map(|s| s.load)
        .fold((0u64, 0u64), |(b, n), l| (b + l.busy_ns, n + l.served));
    busy / served.max(1)
}

/// The paced interactive tenant: two clients, Poisson arrivals, ~10%
/// of fleet capacity in aggregate.
fn interactive_tenant(mean_service: Ns) -> TenantSpec {
    let mut spec = TenantSpec::new(ReqClass::Interactive, 2);
    spec.arrival = Some(ArrivalSpec::OpenPoisson {
        mean_interarrival_ns: 5 * mean_service,
    });
    spec
}

/// The open-loop batch aggressor: one client offering ~1.75× the
/// fleet's capacity, never backing off.
fn batch_aggressor(mean_service: Ns) -> TenantSpec {
    let mut spec = TenantSpec::new(ReqClass::Batch, 1);
    spec.arrival = Some(ArrivalSpec::OpenPoisson {
        mean_interarrival_ns: (mean_service / 7).max(1),
    });
    spec
}

fn shared_run(mean_service: Ns, duration: Ns, discipline: DispatchDiscipline) -> RunReport {
    let mut cfg = config(3, duration);
    cfg.tenants = vec![
        interactive_tenant(mean_service),
        batch_aggressor(mean_service),
    ];
    cfg.discipline = discipline;
    run_frontend(&cfg).expect("shared run")
}

fn int_p99_queue_delay(mt: &MtStats) -> Ns {
    mt.class(ReqClass::Interactive).queue_delay.quantile(0.99)
}

fn main() {
    let quick = std::env::var("PTSBENCH_QUICK").is_ok_and(|v| v == "1");
    let duration = if quick { MINUTE } else { 2 * MINUTE };

    println!("================================================================");
    println!("ptsbench — fig_tenant: multi-tenant isolation under an aggressor");
    println!(
        "{} MiB over {SHARDS} shards, lsm, Zipfian(0.9) reads, {} simulated \
         minutes; paced interactive tenant vs open-loop batch aggressor",
        TOTAL_BYTES >> 20,
        duration / MINUTE
    );
    println!("================================================================");

    let mean_service = calibrate_mean_service(duration);
    println!(
        "calibration: mean service {:.1} ms → fleet capacity ≈ {:.1} ops/s",
        mean_service as f64 / MILLISECOND as f64,
        SHARDS as f64 * 1e9 / mean_service as f64
    );

    // Isolated baseline: the interactive tenant alone, plus one p99
    // service time (a shared fleet can never beat "behind one
    // in-service op").
    let iso = {
        let mut cfg = config(2, duration);
        cfg.tenants = vec![interactive_tenant(mean_service)];
        run_frontend(&cfg).expect("isolated run")
    };
    let iso_mt = iso.mt_totals().expect("per-class stats");
    let baseline = int_p99_queue_delay(&iso_mt) + iso.latency.quantile(0.99);

    let fifo = shared_run(mean_service, duration, DispatchDiscipline::Fifo);
    let wfq = shared_run(
        mean_service,
        duration,
        DispatchDiscipline::WeightedFair { weights: WEIGHTS },
    );
    let fifo_mt = fifo.mt_totals().expect("per-class stats");
    let wfq_mt = wfq.mt_totals().expect("per-class stats");
    let fifo_p99 = int_p99_queue_delay(&fifo_mt);
    let wfq_p99 = int_p99_queue_delay(&wfq_mt);

    let batch_served = |mt: &MtStats| mt.class(ReqClass::Batch).slo.served;
    let rows = vec![
        (
            "isolated".to_string(),
            vec![baseline as f64 / 1e6, 1.0, 0.0],
        ),
        (
            "fifo".to_string(),
            vec![
                fifo_p99 as f64 / 1e6,
                fifo_p99 as f64 / baseline as f64,
                batch_served(&fifo_mt) as f64,
            ],
        ),
        (
            "wfq8-1-1".to_string(),
            vec![
                wfq_p99 as f64 / 1e6,
                wfq_p99 as f64 / baseline as f64,
                batch_served(&wfq_mt) as f64,
            ],
        ),
    ];
    println!();
    println!(
        "{}",
        render_sweep_table(
            "fig_tenant — interactive p99 queue delay vs isolated baseline",
            &["int p99(ms)", "x baseline", "batch srv"],
            &rows,
        )
    );

    assert!(
        fifo_p99 >= 10 * baseline,
        "FIFO must let the aggressor collapse interactive latency \
         ({fifo_p99} < 10x {baseline})"
    );
    assert!(
        wfq_p99 <= 2 * baseline,
        "WFQ must hold interactive near the isolated baseline \
         ({wfq_p99} > 2x {baseline})"
    );
    assert!(
        batch_served(&wfq_mt) as f64 >= 0.9 * batch_served(&fifo_mt) as f64,
        "WFQ must stay work-conserving: batch {} vs FIFO {}",
        batch_served(&wfq_mt),
        batch_served(&fifo_mt)
    );

    // Token-bucket quota: cap the aggressor at ~25% of fleet capacity;
    // it keeps offering ~2× its quota.
    let quota_rate = (SHARDS as u64 * 1_000_000_000 / mean_service / 4).max(1);
    let quota = TenantQuota {
        rate_ops_per_sec: quota_rate,
        burst_ops: 16,
    };
    let quota_report = {
        let mut cfg = config(3, duration);
        let mut aggressor = TenantSpec::new(ReqClass::Batch, 1);
        aggressor.arrival = Some(ArrivalSpec::OpenPoisson {
            mean_interarrival_ns: (1_000_000_000 / (2 * quota_rate)).max(1),
        });
        aggressor.quota = Some(quota);
        cfg.tenants = vec![interactive_tenant(mean_service), aggressor];
        run_frontend(&cfg).expect("quota run")
    };
    let quota_mt = quota_report.mt_totals().expect("per-tenant stats");
    let ledger = &quota_mt.tenants[1];
    let cap = quota_rate * (duration / SECOND) + quota.burst_ops;
    println!(
        "quota {} ops/s + {} burst: offered {} admitted {} throttled {} (cap {})",
        quota_rate, quota.burst_ops, ledger.offered, ledger.admitted, ledger.throttled, cap
    );
    assert!(
        ledger.admitted <= cap,
        "hard cap: {} > {cap}",
        ledger.admitted
    );
    assert!(
        ledger.admitted as f64 >= 0.9 * (quota_rate * (duration / SECOND)) as f64,
        "a sustained over-offer must come out near its full quota: {} of {cap}",
        ledger.admitted
    );
    assert!(ledger.throttled > 0, "the over-offer must throttle");
    assert_eq!(quota_mt.tenants[0].throttled, 0, "neighbor untouched");

    // Strict priority with age promotion: a closed-loop batch fleet
    // saturates the device; the background tenant is served only
    // through promotion, so its worst-case wait is bounded by the
    // promotion age plus draining the fleet's whole in-flight backlog.
    let sp = {
        let mut cfg = config(2 + BATCH_CLIENTS, duration);
        let mut bg = TenantSpec::new(ReqClass::Background, 1);
        bg.arrival = Some(ArrivalSpec::OpenPoisson {
            mean_interarrival_ns: 20 * mean_service,
        });
        let mut int = TenantSpec::new(ReqClass::Interactive, 1);
        int.arrival = Some(ArrivalSpec::OpenPoisson {
            mean_interarrival_ns: 10 * mean_service,
        });
        cfg.tenants = vec![int, bg, TenantSpec::new(ReqClass::Batch, BATCH_CLIENTS)];
        cfg.discipline = DispatchDiscipline::StrictPriority {
            promote_after_ns: PROMOTE_AFTER,
        };
        run_frontend(&cfg).expect("strict-priority run")
    };
    let sp_mt = sp.mt_totals().expect("per-class stats");
    let bg_starve = sp_mt.class(ReqClass::Background).starve_max_ns;
    let starve_bound = PROMOTE_AFTER + (BATCH_CLIENTS as u64 + 2) * mean_service + SECOND;
    println!(
        "strict priority (promote after {:.1} s): background starve max {:.2} s \
         (bound {:.2} s)",
        PROMOTE_AFTER as f64 / 1e9,
        bg_starve as f64 / 1e9,
        starve_bound as f64 / 1e9
    );
    assert!(
        sp_mt.class(ReqClass::Background).slo.served > 0,
        "the background tenant must be served, not starved out"
    );
    assert!(
        bg_starve >= PROMOTE_AFTER,
        "strict priority must actually deprioritize background first: \
         {bg_starve} < {PROMOTE_AFTER}"
    );
    assert!(
        bg_starve <= starve_bound,
        "age promotion must bound background starvation: {bg_starve} > {starve_bound}"
    );

    // Headline guarantee: multi-tenant reports are deterministic.
    let rerun = shared_run(
        mean_service,
        duration,
        DispatchDiscipline::WeightedFair { weights: WEIGHTS },
    );
    assert_eq!(
        wfq.render(),
        rerun.render(),
        "multi-tenant reports must render byte-identically"
    );
    println!("determinism: byte-identical multi-tenant reports across runs — ok");
}
