//! Figure 5 — dataset-size sweep (Pitfall 4, §4.4): steady throughput,
//! WA-D and WA-A at dataset/capacity ratios 0.25–0.62, trimmed and
//! preconditioned.

use ptsbench_bench::{banner, bench_options};
use ptsbench_core::pitfalls::p4_dataset_size;

fn main() {
    banner(
        "Figure 5 (a-c)",
        "Pitfall 4: testing with a single dataset size",
    );
    let results = p4_dataset_size::evaluate(&bench_options());
    let report = results.report();
    println!("{}", report.to_text());
    assert!(report.passed(), "Figure 5 phenomena did not reproduce");
}
