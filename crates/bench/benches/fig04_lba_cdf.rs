//! Figure 4 — CDF of LBA write probability, LBAs sorted by decreasing
//! write count. The B+Tree's curve saturates around x ~ 0.55 (it never
//! writes ~45% of the LBA space); the LSM's reaches 1 only at x = 1.

use ptsbench_bench::{banner, bench_options};
use ptsbench_core::pitfalls::p3_initial_state;

fn main() {
    banner("Figure 4", "LBA write-frequency CDF (basis of Pitfall 3)");
    let results = p3_initial_state::evaluate(&bench_options());
    let lsm = results.lsm_trim.lba_cdf.as_ref().expect("trace enabled");
    let btree = results.btree_trim.lba_cdf.as_ref().expect("trace enabled");

    println!("{:>6}  {:>10}  {:>10}", "x", "LSM", "B+Tree");
    for i in (0..lsm.len()).step_by(5) {
        println!(
            "{:>6.2}  {:>10.4}  {:>10.4}",
            lsm[i].0, lsm[i].1, btree[i].1
        );
    }
    let lsm_untouched = results.lsm_trim.untouched_lba_fraction.expect("traced");
    let bt_untouched = results.btree_trim.untouched_lba_fraction.expect("traced");
    println!(
        "\nuntouched LBA fraction: LSM {lsm_untouched:.3} (paper ~0), \
         B+Tree {bt_untouched:.3} (paper ~0.45)"
    );
    assert!(
        bt_untouched > 0.25 && lsm_untouched < bt_untouched / 2.0,
        "Figure 4 footprint contrast did not reproduce"
    );
}
