//! Figure 2 — steady-state vs bursty performance (Pitfall 1, §4.1):
//! KV and device throughput, WA-A and WA-D over time for both engines
//! on a trimmed drive.

use ptsbench_bench::{banner, bench_options};
use ptsbench_core::pitfalls::p1_short_tests;

fn main() {
    banner("Figure 2 (a-d)", "Pitfall 1: running short tests");
    let results = p1_short_tests::evaluate(&bench_options());
    let report = results.report();
    println!("{}", report.to_text());
    assert!(report.passed(), "Figure 2 phenomena did not reproduce");
}
