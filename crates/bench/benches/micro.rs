//! Criterion micro-benchmarks of the core data structures: the FTL
//! write path, extent allocator, memtable, bloom filter, SSTable
//! build/lookup, B+Tree operations and the k-way merge.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ptsbench_btree::{BTreeDb, BTreeOptions};
use ptsbench_lsm::bloom::BloomFilter;
use ptsbench_lsm::iter::{EntryStream, KWayMerge};
use ptsbench_lsm::memtable::Memtable;
use ptsbench_lsm::sstable::{SstableBuilder, SstableReader};
use ptsbench_lsm::{LsmDb, LsmOptions};
use ptsbench_ssd::{DeviceConfig, DeviceProfile, LpnRange, Ssd};
use ptsbench_vfs::{AllocPolicy, ExtentAllocator, Vfs, VfsOptions};

fn fresh_vfs(mb: u64) -> Vfs {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), mb << 20));
    Vfs::whole_device(ssd.into_shared(), VfsOptions::default())
}

fn bench_ftl(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftl");
    group.bench_function("random_overwrite_with_gc", |b| {
        b.iter_batched(
            || {
                let mut ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 64 << 20));
                let pages = ssd.logical_pages();
                for lpn in 0..pages {
                    ssd.write_page(lpn).expect("write");
                }
                (ssd, SmallRng::seed_from_u64(7))
            },
            |(mut ssd, mut rng)| {
                let pages = ssd.logical_pages();
                for _ in 0..1000 {
                    ssd.write_page(rng.gen_range(0..pages)).expect("write");
                }
                black_box(ssd.smart().wa_d())
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("trim_range", |b| {
        b.iter_batched(
            || {
                let mut ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 64 << 20));
                for lpn in 0..ssd.logical_pages() {
                    ssd.write_page(lpn).expect("write");
                }
                ssd
            },
            |mut ssd| {
                let pages = ssd.logical_pages();
                black_box(ssd.trim_range(LpnRange::new(0, pages / 2)))
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("allocator/churn", |b| {
        b.iter_batched(
            || ExtentAllocator::new(LpnRange::new(0, 1 << 20), AllocPolicy::NextFit),
            |mut a| {
                let mut live = Vec::new();
                for i in 0..500 {
                    let got = a.alloc(64 + (i % 7) * 16).expect("space");
                    live.extend(got);
                    if i % 3 == 0 && !live.is_empty() {
                        let e = live.swap_remove((i as usize) % live.len());
                        a.release(e);
                    }
                }
                black_box(a.free_pages())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_memtable(c: &mut Criterion) {
    c.bench_function("memtable/insert_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let keys: Vec<Vec<u8>> = (0..10_000)
            .map(|_| rng.gen::<u64>().to_be_bytes().to_vec())
            .collect();
        b.iter(|| {
            let mut m = Memtable::new();
            for k in &keys {
                m.put(k, &[0u8; 100]);
            }
            black_box(m.len())
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    let keys: Vec<Vec<u8>> = (0..100_000u32).map(|i| i.to_le_bytes().to_vec()).collect();
    c.bench_function("bloom/build_100k", |b| {
        b.iter(|| black_box(BloomFilter::build(&keys, 10)))
    });
    let filter = BloomFilter::build(&keys, 10);
    c.bench_function("bloom/query", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(filter.may_contain(&i.to_le_bytes()))
        })
    });
}

fn bench_sstable(c: &mut Criterion) {
    c.bench_function("sstable/build_5k_entries", |b| {
        let mut n = 0u64;
        b.iter(|| {
            let vfs = fresh_vfs(64);
            n += 1;
            let mut builder = SstableBuilder::create(vfs, "t", 4096, 10).expect("create");
            for i in 0..5000u32 {
                let key = format!("key{i:08}");
                builder.add(key.as_bytes(), Some(&[0u8; 64])).expect("add");
            }
            black_box(builder.finish().expect("finish"))
        })
    });
    c.bench_function("sstable/point_get", |b| {
        let vfs = fresh_vfs(64);
        let mut builder = SstableBuilder::create(vfs.clone(), "t", 4096, 10).expect("create");
        for i in 0..50_000u32 {
            let key = format!("key{i:08}");
            builder.add(key.as_bytes(), Some(&[0u8; 64])).expect("add");
        }
        builder.finish().expect("finish");
        let reader = SstableReader::open(vfs, "t").expect("open");
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 50_000;
            let key = format!("key{i:08}");
            black_box(reader.get(key.as_bytes()).expect("get"))
        })
    });
}

fn bench_kway_merge(c: &mut Criterion) {
    c.bench_function("kway_merge/8x1k", |b| {
        b.iter_batched(
            || {
                (0..8usize)
                    .map(|s| {
                        let items: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..1000u32)
                            .map(|i| {
                                let k = format!("key{:08}", i * 8 + s as u32);
                                (k.into_bytes(), Some(vec![0u8; 32]))
                            })
                            .collect();
                        Box::new(items.into_iter()) as EntryStream<'static>
                    })
                    .collect::<Vec<_>>()
            },
            |sources| black_box(KWayMerge::new(sources).count()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    group.bench_function("lsm/put_2k_ops", |b| {
        b.iter_batched(
            || LsmDb::open(fresh_vfs(64), LsmOptions::small()).expect("open"),
            |mut db| {
                let mut rng = SmallRng::seed_from_u64(3);
                for _ in 0..2000 {
                    let i: u32 = rng.gen_range(0..500);
                    db.put(format!("key{i:08}").as_bytes(), &[0u8; 256])
                        .expect("put");
                }
                black_box(db.stats().flushes)
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("btree/put_2k_ops", |b| {
        b.iter_batched(
            || BTreeDb::open(fresh_vfs(64), BTreeOptions::small()).expect("open"),
            |mut db| {
                let mut rng = SmallRng::seed_from_u64(3);
                for _ in 0..2000 {
                    let i: u32 = rng.gen_range(0..500);
                    db.put(format!("key{i:08}").as_bytes(), &[0u8; 256])
                        .expect("put");
                }
                black_box(db.len())
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ftl,
    bench_allocator,
    bench_memtable,
    bench_bloom,
    bench_sstable,
    bench_kway_merge,
    bench_engines
);
criterion_main!(benches);
