//! Goodput vs offered load under admission control — beyond the paper:
//! the serving front-end's goodput/offered-load curves for every
//! registered engine, control (admit everything) against
//! `PredictedSojourn` shedding, offered load swept from 0.2× to 3× of
//! each engine's calibrated saturation rate.
//!
//! The paper's core lesson is that steady-state behavior under
//! sustained pressure is what separates tree structures on flash; one
//! level up, a serving stack is characterized the same way — by its
//! goodput curve under sustained overload, not its unloaded latency.
//! Without admission control an open-loop overload grows the backlog
//! (and therefore the queue-delay tail) without bound for the rest of
//! the run; with sojourn-predictive shedding the dispatcher turns away
//! exactly the requests that would miss the deadline, goodput plateaus
//! at the fleet's effective capacity, and every admitted request starts
//! service within its budget.
//!
//! The bench asserts the subsystem's headline guarantees per engine:
//! goodput grows below saturation, plateaus past it (3× goodput ≥ 90%
//! of 1× goodput), the queue-delay maximum of admitted requests never
//! exceeds the deadline, the no-policy control's p99 collapses to >10×
//! the deadline, and reports render byte-identically run-to-run.

use ptsbench_core::frontend::{FrontendRun, SloPolicy};
use ptsbench_core::registry::{EngineKind, EngineRegistry};
use ptsbench_core::runner::RunConfig;
use ptsbench_harness::run_frontend;
use ptsbench_metrics::report::render_sweep_table;
use ptsbench_metrics::runreport::RunReport;
use ptsbench_ssd::{Ns, MILLISECOND, MINUTE, SECOND};
use ptsbench_workload::ArrivalSpec;

/// 64 MiB total: four 16 MiB shards, the smallest SSD1 geometry.
const TOTAL_BYTES: u64 = 64 << 20;
const SHARDS: usize = 4;
const CLIENTS: usize = 8;
const LOAD_FACTORS: [f64; 5] = [0.2, 0.5, 1.0, 2.0, 3.0];

fn config(engine: EngineKind, duration: Ns) -> FrontendRun {
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine,
            device_bytes: TOTAL_BYTES,
            read_fraction: 0.5,
            duration,
            sample_window: duration / 4,
            ..RunConfig::default()
        },
        CLIENTS,
    );
    cfg.shards = SHARDS;
    cfg
}

/// Mean per-op service time of the fleet, probed with one zero-think
/// closed-loop client. Engines differ ~8× here, so rates and deadlines
/// must be calibrated per engine for one sweep shape to stress all of
/// them equally. Deterministic, like everything else.
fn calibrate_mean_service(engine: EngineKind, duration: Ns) -> Ns {
    let mut cfg = config(engine, duration);
    cfg.clients = 1;
    let report = run_frontend(&cfg).expect("calibration run");
    let (busy, served) = report
        .shards
        .iter()
        .filter_map(|s| s.load)
        .fold((0u64, 0u64), |(b, n), l| (b + l.busy_ns, n + l.served));
    busy / served.max(1)
}

fn serve(engine: EngineKind, duration: Ns, arrival: ArrivalSpec, slo: SloPolicy) -> RunReport {
    let mut cfg = config(engine, duration);
    cfg.arrival = arrival;
    cfg.slo = slo.into();
    run_frontend(&cfg).expect("frontend run")
}

fn main() {
    ptsbench_hashlog::register();
    let quick = std::env::var("PTSBENCH_QUICK").is_ok_and(|v| v == "1");
    let duration = if quick { 20 * MINUTE } else { 40 * MINUTE };

    println!("================================================================");
    println!("ptsbench — fig_slo: goodput vs offered load (admission control)");
    println!(
        "{} MiB over {SHARDS} shards, {CLIENTS} open-loop Poisson clients, 50:50 \
         read:write, {} simulated minutes, control vs PredictedSojourn shedding, \
         all registered engines",
        TOTAL_BYTES >> 20,
        duration / MINUTE
    );
    println!("================================================================");

    for engine in EngineRegistry::all() {
        let mean_service = calibrate_mean_service(engine, duration);
        let saturation_interarrival = ((CLIENTS as u64 * mean_service / SHARDS as u64)
            .div_ceil(10 * MILLISECOND)
            .max(1))
            * (10 * MILLISECOND);
        let deadline = (4 * mean_service).div_ceil(100 * MILLISECOND) * (100 * MILLISECOND);
        let base = ArrivalSpec::OpenPoisson {
            mean_interarrival_ns: saturation_interarrival,
        };
        println!();
        println!(
            "{}: mean service {:.1} ms, saturation interarrival {:.2} s/client, \
             deadline {:.1} s",
            engine.label(),
            mean_service as f64 / MILLISECOND as f64,
            saturation_interarrival as f64 / SECOND as f64,
            deadline as f64 / SECOND as f64
        );

        let mut rows = Vec::new();
        let mut goodput = std::collections::BTreeMap::new();
        let mut control_p99_at_3x = 0;
        for factor in LOAD_FACTORS {
            let arrival = base.at_load_factor(factor);
            let control = serve(engine, duration, arrival, SloPolicy::None);
            let ctl_qd = control.queue_delay.as_ref().expect("queue delay");
            let ctl_p99 = control.queue_delay_quantile(0.99).expect("p99");
            if factor == 3.0 {
                control_p99_at_3x = ctl_p99;
            }

            let shed = serve(
                engine,
                duration,
                arrival,
                SloPolicy::PredictedSojourn {
                    deadline_ns: deadline,
                },
            );
            let totals = shed.slo_totals().expect("slo accounting");
            let shed_qd = shed.queue_delay.as_ref().expect("queue delay");
            assert!(
                shed_qd.max() <= deadline,
                "{engine}: an admitted request started past the deadline \
                 ({} > {deadline}) — the sojourn prediction must be exact",
                shed_qd.max()
            );
            goodput.insert((factor * 10.0) as u64, totals.goodput_per_sec());

            rows.push((
                format!("{}/x{:.1}", engine.label(), factor),
                vec![
                    totals.offered_per_sec(),
                    control.ops as f64 * ctl_qd.fraction_at_most(deadline)
                        / (duration as f64 / 1e9),
                    ctl_p99 as f64 / 1e9,
                    totals.goodput_per_sec(),
                    shed.queue_delay_quantile(0.99).expect("p99") as f64 / 1e9,
                    totals.attainment(),
                ],
            ));
        }
        println!();
        println!(
            "{}",
            render_sweep_table(
                &format!("fig_slo — {}", engine.name()),
                &[
                    "offered/s",
                    "ctl good/s",
                    "ctl p99(s)",
                    "shed good/s",
                    "shed p99(s)",
                    "attainment"
                ],
                &rows,
            )
        );

        // The figure's claims, asserted per engine.
        let at = |f: f64| goodput[&((f * 10.0) as u64)];
        assert!(
            at(3.0) >= 0.9 * at(1.0),
            "{engine}: goodput must plateau past saturation: {goodput:?}"
        );
        assert!(
            at(1.0) > 2.0 * at(0.2),
            "{engine}: goodput must still grow below saturation: {goodput:?}"
        );
        assert!(
            control_p99_at_3x > 10 * deadline,
            "{engine}: the no-policy control must collapse into the tail at 3x \
             (p99 {control_p99_at_3x} vs deadline {deadline})"
        );
    }

    // Headline guarantee: the SLO-governed report is deterministic.
    let run = || {
        serve(
            EngineKind::lsm(),
            20 * MINUTE,
            ArrivalSpec::OpenPoisson {
                mean_interarrival_ns: SECOND,
            },
            SloPolicy::QueueBound { max_pending: 4 },
        )
        .render()
    };
    assert_eq!(run(), run(), "SLO reports must render byte-identically");
    println!("determinism: byte-identical SLO reports across runs — ok");
}
