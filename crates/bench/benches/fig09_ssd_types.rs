//! Figures 9 and 10 — storage technology (Pitfall 7, §4.7): steady
//! throughput of both engines across SSD1 (enterprise flash), SSD2
//! (consumer QLC with a large cache) and SSD3 (Optane-like), plus the
//! 1-minute-average throughput variability series.

use ptsbench_bench::{banner, bench_options};
use ptsbench_core::pitfalls::p7_storage_tech;

fn main() {
    banner("Figures 9-10", "Pitfall 7: testing on a single SSD type");
    let results = p7_storage_tech::evaluate(&bench_options());
    let report = results.report();
    println!("{}", report.to_text());
    assert!(report.passed(), "Figure 9/10 phenomena did not reproduce");
}
