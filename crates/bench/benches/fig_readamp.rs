//! Read-amplification sweep — beyond the paper: device read traffic of
//! every registered engine under a fixed, seeded Zipfian point-read
//! stream, as the read-path tier's block-cache budget grows and the
//! compression codec switches on.
//!
//! Each probe builds a stack, bulk-loads the default dataset, then
//! replays an identical skewed get stream and measures device read
//! bytes over it. The stream is the same at every sweep point, so the
//! sweep isolates exactly one variable: the tier configuration. The
//! LSM and the hash log consult the shared TinyLFU-gated block cache;
//! the B+Tree's paper pager (its budget overridable through the same
//! knob) serves as the baseline the tier's accounting was unified with.
//!
//! The bench asserts the figure's claims: device read bytes fall
//! monotonically with the cache budget, a real budget beats the seed
//! read path outright, compression shrinks a compressible dataset, and
//! the whole sweep is bit-reproducible.

use ptsbench_cache::Compression;
use ptsbench_core::measure::{build_stack, bulk_load};
use ptsbench_core::registry::{EngineKind, EngineRegistry, EngineTuning};
use ptsbench_core::runner::RunConfig;
use ptsbench_lsm::{LsmDb, LsmOptions};
use ptsbench_metrics::report::render_sweep_table;
use ptsbench_ssd::{DeviceConfig, DeviceProfile, Ssd};
use ptsbench_vfs::{Vfs, VfsOptions};
use ptsbench_workload::{encode_key, KeyDistribution, Sampler};

/// 64 MiB stand-in for the 400 GB reference drive.
const DEVICE_BYTES: u64 = 64 << 20;

/// Cache budgets swept per engine (0 = the seed read path).
const BUDGETS: [u64; 4] = [0, 256 << 10, 1 << 20, 4 << 20];

/// One sweep point's measurements.
struct Probe {
    device_read_bytes: u64,
    hit_rate: Option<f64>,
}

/// Builds a stack + engine with the given tier knobs, loads the default
/// dataset, replays `gets` seeded Zipfian point gets, and measures the
/// device read path. Fully deterministic per configuration.
fn read_probe(engine: EngineKind, cache_bytes: u64, level: u8, gets: u64) -> Probe {
    let cfg = RunConfig {
        engine,
        device_bytes: DEVICE_BYTES,
        cache_bytes,
        compression_level: level,
        ..RunConfig::default()
    };
    let stack = build_stack(&cfg).expect("stack");
    let tuning = EngineTuning::for_device(cfg.device_bytes)
        .with_cache_bytes(cache_bytes)
        .with_compression_level(level);
    let mut system = engine
        .open(stack.vfs.clone(), &tuning)
        .expect("open engine");
    let workload = cfg.workload();
    bulk_load(system.as_mut(), &workload).expect("bulk load");
    system.flush().expect("flush");
    stack.shared.lock().reset_observability();

    let mut sampler = Sampler::new(
        KeyDistribution::Zipfian { theta: 0.9 },
        workload.num_keys,
        0xAC_CE55,
    );
    let mut key = Vec::new();
    for _ in 0..gets {
        encode_key(
            workload.key_base + sampler.sample(),
            workload.key_size,
            &mut key,
        );
        assert!(
            system.get(&key).expect("get").is_some(),
            "every loaded key must be readable"
        );
    }
    system.drain_io();

    let read_bytes = stack.shared.lock().smart().host_pages_read * stack.page_size;
    Probe {
        device_read_bytes: read_bytes,
        hit_rate: system.stats().cache.and_then(|c| {
            let total = c.hits + c.misses;
            (total > 0).then(|| c.hits as f64 / total as f64)
        }),
    }
}

/// On-disk footprint of a compressible LSM dataset at `level` (the
/// sweep workload's fill values are pseudorandom, i.e. incompressible,
/// so the compression claim needs its own dataset).
fn compressible_footprint(level: u8) -> u64 {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 48 << 20));
    let vfs = Vfs::whole_device(ssd.into_shared(), VfsOptions::default());
    let opts = LsmOptions {
        compression: Compression::from_level(level),
        ..LsmOptions::small()
    };
    let mut db = LsmDb::open(vfs.clone(), opts).expect("open");
    for i in 0..4_000u64 {
        let key = format!("key{i:08}");
        let value = format!("v{:02}", i % 10).repeat(64);
        db.put(key.as_bytes(), value.as_bytes()).expect("put");
    }
    db.flush().expect("flush");
    vfs.stats().used_bytes
}

fn main() {
    ptsbench_hashlog::register();
    let quick = std::env::var("PTSBENCH_QUICK").is_ok_and(|v| v == "1");
    let gets: u64 = if quick { 1_500 } else { 4_000 };

    println!("================================================================");
    println!("ptsbench — fig_readamp (cache budget x compression sweep)");
    println!(
        "simulated drive: {} MiB stand-in for a 400 GB-class device; \
         {gets} Zipfian(0.9) point gets per probe, budgets 0 -> 4 MiB",
        DEVICE_BYTES >> 20
    );
    println!("================================================================");

    let mut rows = Vec::new();
    let mut sweeps: Vec<(EngineKind, u8, Vec<Probe>)> = Vec::new();
    for engine in EngineRegistry::all() {
        // The B+Tree ignores the compression knob (fixed-size page
        // slots), so only its cache axis is swept.
        let levels: &[u8] = if engine.label() == "btree" {
            &[0]
        } else {
            &[0, 3]
        };
        for &level in levels {
            let mut probes = Vec::new();
            for budget in BUDGETS {
                let p = read_probe(engine, budget, level, gets);
                rows.push((
                    format!("{}/c{}k/z{level}", engine.label(), budget >> 10),
                    vec![
                        (budget >> 10) as f64,
                        p.device_read_bytes as f64 / 1e6,
                        p.device_read_bytes as f64 / gets as f64,
                        p.hit_rate.unwrap_or(0.0),
                    ],
                ));
                probes.push(p);
            }
            sweeps.push((engine, level, probes));
        }
    }
    println!(
        "{}",
        render_sweep_table(
            "Device read traffic vs cache budget (fixed Zipfian get stream)",
            &["budget_KiB", "dev_read_MB", "B/get", "hit_rate"],
            &rows,
        )
    );

    // The figure's claims, per engine and level.
    for (engine, level, probes) in &sweeps {
        let label = engine.label();
        if label == "btree" {
            // The paper pager is the budget-0 baseline; explicit budgets
            // only override its size, so compare within those.
            for w in probes[1..].windows(2) {
                assert!(
                    w[1].device_read_bytes <= w[0].device_read_bytes,
                    "btree: a larger pager budget must not read more"
                );
            }
            assert!(
                probes[0].hit_rate.is_some(),
                "btree: the pager always accounts its cache"
            );
            continue;
        }
        for (i, w) in probes.windows(2).enumerate() {
            assert!(
                w[1].device_read_bytes <= w[0].device_read_bytes,
                "{label}/z{level}: {} -> {} budget step raised device reads \
                 ({} -> {} bytes)",
                BUDGETS[i],
                BUDGETS[i + 1],
                w[0].device_read_bytes,
                w[1].device_read_bytes
            );
        }
        assert!(
            probes[BUDGETS.len() - 1].device_read_bytes < probes[0].device_read_bytes,
            "{label}/z{level}: the largest budget must beat the seed read path"
        );
        assert!(
            probes[0].hit_rate.is_none(),
            "{label}: budget 0 must stay on the seed read path (no cache stats)"
        );
    }
    println!("monotonicity check: device read bytes fall with cache budget (lsm, hashlog)");

    // Compression earns its keep on compressible data.
    let (plain, packed) = (compressible_footprint(0), compressible_footprint(3));
    assert!(
        packed < plain,
        "level 3 must shrink a compressible dataset: {plain} -> {packed} bytes"
    );
    println!(
        "compression check: compressible LSM dataset {plain} B stored -> {packed} B at level 3"
    );

    // Determinism: an identical probe reproduces identical measurements.
    let a = read_probe(EngineKind::lsm(), 1 << 20, 3, gets);
    let b = read_probe(EngineKind::lsm(), 1 << 20, 3, gets);
    assert_eq!(a.device_read_bytes, b.device_read_bytes);
    assert_eq!(
        a.hit_rate.map(f64::to_bits),
        b.hit_rate.map(f64::to_bits),
        "identical probes must measure bit-identically"
    );
    println!("determinism check: identical probes measured bit-identically");
}
