//! # ptsbench-bench — the figure-regeneration harness
//!
//! One bench target per figure of the paper's evaluation (`cargo bench`
//! runs them all and prints the series/tables/heatmaps in the shape of
//! the corresponding figure), plus criterion micro-benchmarks of the
//! core data structures.
//!
//! | Target | Paper figures |
//! |---|---|
//! | `fig02_steady_state` | Fig 2a–2d (Pitfall 1) |
//! | `fig03_initial_state` | Fig 3a–3d (Pitfall 3) |
//! | `fig04_lba_cdf` | Fig 4 |
//! | `fig05_dataset_size` | Fig 5a–5c (Pitfall 4) |
//! | `fig06_space_amp` | Fig 6a–6c (Pitfall 5) |
//! | `fig07_overprovisioning` | Fig 7a/7b + Fig 8 (Pitfall 6) |
//! | `fig09_ssd_types` | Fig 9 + Fig 10a/10b (Pitfall 7) |
//! | `fig11_workloads` | Fig 11a–11d |
//! | `fig_scaling` | beyond the paper: 1→8 client scaling, all engines |
//! | `fig_qd` | beyond the paper: read throughput vs I/O queue depth 1→32 |
//! | `micro` | criterion micro-benchmarks |
//!
//! Sizing: benches default to a 128 MiB simulated stand-in for the
//! paper's 400 GB drive with the full 210-minute measured phase. Set
//! `PTSBENCH_QUICK=1` for a fast smoke configuration.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ptsbench_core::pitfalls::PitfallOptions;
use ptsbench_ssd::MINUTE;

/// Sizing used by the figure benches: full paper-shaped runs by
/// default, a smoke configuration under `PTSBENCH_QUICK=1`.
pub fn bench_options() -> PitfallOptions {
    if std::env::var("PTSBENCH_QUICK").is_ok_and(|v| v == "1") {
        PitfallOptions::quick()
    } else {
        PitfallOptions::default()
    }
}

/// Prints a bench banner with reproduction context.
pub fn banner(figure: &str, pitfall: &str) {
    let o = bench_options();
    println!("================================================================");
    println!("ptsbench — {figure} ({pitfall})");
    println!(
        "simulated drive: {} MiB stand-in for a 400 GB-class device; \
         {} simulated minutes, {}-minute windows",
        o.device_bytes >> 20,
        o.duration / MINUTE,
        o.sample_window / MINUTE
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_options_default_shape() {
        // (Environment-dependent: only assert the non-quick invariants.)
        let o = bench_options();
        assert!(o.device_bytes >= PitfallOptions::quick().device_bytes);
        assert!(o.duration >= PitfallOptions::quick().duration);
    }
}
