//! Shard-aware load metrics under skew, measured end-to-end through
//! the serving front-end: hash routing bounds the hot-shard imbalance
//! a Zipfian workload creates under contiguous slicing, and the
//! imbalance metrics render deterministically (the regression the CI
//! determinism checks rely on).

use ptsbench_core::frontend::FrontendRun;
use ptsbench_core::registry::EngineKind;
use ptsbench_core::runner::RunConfig;
use ptsbench_core::sharded::Sharding;
use ptsbench_harness::run_frontend;
use ptsbench_metrics::runreport::RunReport;
use ptsbench_ssd::MINUTE;
use ptsbench_workload::KeyDistribution;

/// 8 closed-loop clients, 4 shards, Zipfian keys.
fn serve(sharding: Sharding) -> RunReport {
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine: EngineKind::lsm(),
            device_bytes: 64 << 20,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            read_fraction: 0.5,
            duration: 10 * MINUTE,
            sample_window: 5 * MINUTE,
            ..RunConfig::default()
        },
        8,
    );
    cfg.shards = 4;
    cfg.sharding = sharding;
    run_frontend(&cfg).expect("frontend run")
}

#[test]
fn hashed_routing_bounds_the_request_imbalance_contiguous_suffers() {
    let contiguous = serve(Sharding::Contiguous);
    let hashed = serve(Sharding::Hashed);
    let contiguous_ratio = contiguous.load_imbalance().expect("load").request_ratio();
    let hashed_ratio = hashed.load_imbalance().expect("load").request_ratio();
    assert!(
        hashed_ratio < 3.0,
        "hashed max/min request ratio {hashed_ratio} must stay bounded"
    );
    assert!(
        contiguous_ratio > 2.0 * hashed_ratio,
        "contiguous ratio {contiguous_ratio} must dwarf hashed {hashed_ratio}"
    );
    // The hot prefix shard is also the utilization outlier.
    let imbalance = contiguous.load_imbalance().expect("load");
    assert!(
        imbalance.utilization_spread() > hashed.load_imbalance().unwrap().utilization_spread(),
        "contiguous slicing must widen the utilization spread"
    );
    // And queue delay follows the imbalance: the starved-queue p99
    // under contiguous slicing exceeds the hashed one.
    let contiguous_p99 = contiguous.queue_delay_quantile(0.99).expect("p99");
    let hashed_p99 = hashed.queue_delay_quantile(0.99).expect("p99");
    assert!(
        contiguous_p99 > hashed_p99,
        "hot-shard queueing: contiguous p99 {contiguous_p99} vs hashed {hashed_p99}"
    );
}

#[test]
fn imbalance_metrics_render_deterministically() {
    // The regression the run-twice-diff CI pattern depends on: two
    // identically seeded serving runs — including the new qdelay[...]
    // / load[...] shard annotations and the shard-load footer — render
    // byte-identically.
    let a = serve(Sharding::Hashed).render();
    let b = serve(Sharding::Hashed).render();
    assert_eq!(a, b);
    assert!(a.contains("shard load: req_ratio="), "{a}");
    assert!(a.contains("qdelay[p99="), "{a}");
    assert!(a.contains("load[req="), "{a}");
    assert!(a.contains("/hash/fan8/closed/d16"), "{a}");
}
