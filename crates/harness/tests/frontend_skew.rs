//! Shard-aware load metrics under skew, measured end-to-end through
//! the serving front-end: hash routing bounds the hot-shard imbalance
//! a Zipfian workload creates under contiguous slicing, and the
//! imbalance metrics render deterministically (the regression the CI
//! determinism checks rely on).

use ptsbench_core::frontend::{FrontendRun, SloPolicy};
use ptsbench_core::registry::EngineKind;
use ptsbench_core::runner::RunConfig;
use ptsbench_core::sharded::Sharding;
use ptsbench_harness::run_frontend;
use ptsbench_metrics::runreport::RunReport;
use ptsbench_ssd::{MINUTE, SECOND};
use ptsbench_workload::{ArrivalSpec, KeyDistribution};

/// 8 closed-loop clients, 4 shards, Zipfian keys.
fn serve(sharding: Sharding) -> RunReport {
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine: EngineKind::lsm(),
            device_bytes: 64 << 20,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            read_fraction: 0.5,
            duration: 10 * MINUTE,
            sample_window: 5 * MINUTE,
            ..RunConfig::default()
        },
        8,
    );
    cfg.shards = 4;
    cfg.sharding = sharding;
    run_frontend(&cfg).expect("frontend run")
}

#[test]
fn hashed_routing_bounds_the_request_imbalance_contiguous_suffers() {
    let contiguous = serve(Sharding::Contiguous);
    let hashed = serve(Sharding::Hashed);
    let contiguous_ratio = contiguous.load_imbalance().expect("load").request_ratio();
    let hashed_ratio = hashed.load_imbalance().expect("load").request_ratio();
    assert!(
        hashed_ratio < 3.0,
        "hashed max/min request ratio {hashed_ratio} must stay bounded"
    );
    assert!(
        contiguous_ratio > 2.0 * hashed_ratio,
        "contiguous ratio {contiguous_ratio} must dwarf hashed {hashed_ratio}"
    );
    // The hot prefix shard is also the utilization outlier.
    let imbalance = contiguous.load_imbalance().expect("load");
    assert!(
        imbalance.utilization_spread() > hashed.load_imbalance().unwrap().utilization_spread(),
        "contiguous slicing must widen the utilization spread"
    );
    // And queue delay follows the imbalance: the starved-queue p99
    // under contiguous slicing exceeds the hashed one.
    let contiguous_p99 = contiguous.queue_delay_quantile(0.99).expect("p99");
    let hashed_p99 = hashed.queue_delay_quantile(0.99).expect("p99");
    assert!(
        contiguous_p99 > hashed_p99,
        "hot-shard queueing: contiguous p99 {contiguous_p99} vs hashed {hashed_p99}"
    );
}

/// Statistical regression for admission control under skew: with
/// Zipfian keys over contiguous slices, the hot prefix shard is the
/// only part of the fleet past saturation, so `PredictedSojourn`
/// shedding must concentrate its rejections there — the cold shards
/// keep admitting nearly everything — while every admitted request
/// still starts service within the deadline on every shard. Fixed
/// seeds, fixed thresholds.
#[test]
fn predicted_sojourn_concentrates_rejections_on_the_hot_shard() {
    const DEADLINE: u64 = 2 * SECOND;
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine: EngineKind::lsm(),
            device_bytes: 64 << 20,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            read_fraction: 0.5,
            duration: 10 * MINUTE,
            sample_window: 5 * MINUTE,
            ..RunConfig::default()
        },
        8,
    );
    cfg.shards = 4;
    cfg.sharding = Sharding::Contiguous;
    // ~4 requests/s offered in aggregate: past the hot shard's ~1.5/s
    // capacity once Zipfian routing concentrates the traffic, while
    // the cold shards idle far below theirs.
    cfg.arrival = ArrivalSpec::OpenPoisson {
        mean_interarrival_ns: 2 * SECOND,
    };
    cfg.slo = SloPolicy::PredictedSojourn {
        deadline_ns: DEADLINE,
    }
    .into();
    let report = run_frontend(&cfg).expect("frontend run");

    // Rejections concentrate on the hot prefix shard.
    let slo: Vec<_> = report
        .shards
        .iter()
        .map(|s| s.slo.expect("slo accounting"))
        .collect();
    let hot = &slo[0];
    let cold_rejected: u64 = slo[1..].iter().map(|s| s.rejected).sum();
    assert!(
        hot.rejected >= 50,
        "the hot shard must reject in volume, got {}",
        hot.rejected
    );
    assert!(
        hot.rejected > 10 * cold_rejected.max(1),
        "rejections must concentrate on the hot shard: hot={} cold-total={}",
        hot.rejected,
        cold_rejected
    );
    let cold_attainment = slo[1..].iter().map(|s| s.attainment()).fold(1.0, f64::min);
    assert!(
        cold_attainment > 0.9,
        "cold shards stay below saturation and admit nearly everything, \
         got min attainment {cold_attainment}"
    );
    assert!(
        hot.attainment() < 0.7,
        "the hot shard must shed a real fraction of its offered load, \
         got {}",
        hot.attainment()
    );

    // Admitted requests start within the deadline — exactly (the
    // histogram max is tracked unbucketed), on every shard, including
    // the overloaded one.
    let qd = report.queue_delay.as_ref().expect("queue delay");
    assert!(
        qd.max() <= DEADLINE,
        "admitted queue delay must never exceed the deadline: {} > {DEADLINE}",
        qd.max()
    );
    // And the p99 the figure quotes respects it too (bucketed quantiles
    // resolve to an upper bucket edge, ~4% wide).
    let p99 = report.queue_delay_quantile(0.99).expect("p99");
    assert!(
        p99 <= DEADLINE + DEADLINE / 20,
        "admitted p99 queue delay out of bounds: {p99}"
    );
    // The overload is real: the hot shard's engine stays busier than
    // any cold one.
    let loads: Vec<_> = report
        .shards
        .iter()
        .map(|s| s.load.expect("load"))
        .collect();
    assert!(
        loads[0].utilization() > 2.0 * loads[3].utilization(),
        "hot {} vs coldest {}",
        loads[0].utilization(),
        loads[3].utilization()
    );
}

#[test]
fn imbalance_metrics_render_deterministically() {
    // The regression the run-twice-diff CI pattern depends on: two
    // identically seeded serving runs — including the new qdelay[...]
    // / load[...] shard annotations and the shard-load footer — render
    // byte-identically.
    let a = serve(Sharding::Hashed).render();
    let b = serve(Sharding::Hashed).render();
    assert_eq!(a, b);
    assert!(a.contains("shard load: req_ratio="), "{a}");
    assert!(a.contains("qdelay[p99="), "{a}");
    assert!(a.contains("load[req="), "{a}");
    assert!(a.contains("/hash/fan8/closed/d16"), "{a}");
}
