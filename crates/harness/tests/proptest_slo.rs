//! Property tests of admission control at the serving dispatcher.
//!
//! Arbitrary request streams — random kinds, keys, inter-submission
//! gaps, shard counts, routing modes, dispatcher depths and admission
//! policies — must uphold the SLO subsystem's contracts:
//!
//! 1. **exactly-once resolution**: every submitted request produces
//!    exactly one completion record, as Served, Rejected or Shed (or an
//!    out-of-space drop), under any policy;
//! 2. **turned-away work is free**: rejected requests are never queued
//!    (`issued_at == submitted_at`, fixed `REJECT_LATENCY` turnaround)
//!    and neither rejected nor shed requests consume any device or
//!    engine time — per shard, the engine's busy time equals exactly
//!    the sum of the *served* requests' service times;
//! 3. **bounded inflight**: a `QueueBound` policy caps each shard's
//!    admitted-but-incomplete requests at `min(bound, depth)`; the
//!    dispatcher depth alone keeps capping them under every other
//!    policy;
//! 4. **the deadline guarantees hold**: under `PredictedSojourn` every
//!    served request starts within the deadline; under `Deadline`
//!    every served request starts within its budget and every shed
//!    request was already past it;
//! 5. **accounting closes**: per shard,
//!    `offered == admitted + rejected + dropped` and
//!    `admitted == served + shed`.

use proptest::prelude::*;

use ptsbench_core::frontend::{FrontendRun, SloPolicy};
use ptsbench_core::registry::EngineKind;
use ptsbench_core::runner::RunConfig;
use ptsbench_core::sharded::Sharding;
use ptsbench_harness::{Frontend, ReqCompletion, ReqOutcome, Request, REJECT_LATENCY};
use ptsbench_ssd::{MILLISECOND, MINUTE, SECOND};
use ptsbench_workload::OpKind;

/// A small stack per case: 16 MiB shards (the SSD1 geometry floor) and
/// a thin dataset so debug-mode bulk loads stay cheap.
fn config(shards: usize, depth: usize, hashed: bool, slo: SloPolicy) -> FrontendRun {
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine: EngineKind::lsm(),
            device_bytes: (shards as u64) * (16 << 20),
            dataset_fraction: 0.1,
            duration: 30 * MINUTE,
            sample_window: 10 * MINUTE,
            ..RunConfig::default()
        },
        shards,
    );
    cfg.shards = shards;
    cfg.queue_depth = depth;
    cfg.sharding = if hashed {
        Sharding::Hashed
    } else {
        Sharding::Contiguous
    };
    cfg.slo = slo.into();
    cfg.validate();
    cfg
}

/// One of the four policies, drawn from a compact index + parameters.
fn policy(which: u8, bound: usize, deadline_ms: u64) -> SloPolicy {
    match which % 4 {
        0 => SloPolicy::None,
        1 => SloPolicy::QueueBound { max_pending: bound },
        2 => SloPolicy::PredictedSojourn {
            deadline_ns: deadline_ms * MILLISECOND,
        },
        _ => SloPolicy::Deadline {
            budget_ns: deadline_ms * MILLISECOND,
        },
    }
}

/// Sweeps each shard's occupancy intervals (served *and* shed requests
/// hold a queue slot from `issued_at` until they resolve) and asserts
/// the concurrent count never exceeds `cap`. Departures sort before
/// arrivals at the same instant: a slot whose completion time has
/// arrived is free.
fn assert_inflight_bounded(completions: &[ReqCompletion], shards: usize, cap: usize) {
    for shard in 0..shards {
        let mut events: Vec<(u64, i64)> = Vec::new();
        for c in completions.iter().filter(|c| {
            c.shard == shard && matches!(c.outcome, ReqOutcome::Served | ReqOutcome::Shed)
        }) {
            events.push((c.issued_at, 1));
            events.push((c.done_at, -1));
        }
        events.sort_by_key(|&(t, delta)| (t, delta)); // -1 before +1 on ties
        let mut inflight = 0i64;
        let mut max_inflight = 0i64;
        for (_, delta) in events {
            inflight += delta;
            max_inflight = max_inflight.max(inflight);
        }
        assert!(
            max_inflight as usize <= cap,
            "shard {shard}: {max_inflight} in flight exceeds the cap {cap}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_request_resolves_exactly_once_and_turned_away_work_is_free(
        shards in 1usize..4,
        depth in 1usize..6,
        hashed in any::<bool>(),
        which_policy in any::<u8>(),
        bound in 1usize..8,
        deadline_ms in 200u64..5_000,
        ops in 40usize..160,
        seed in any::<u64>(),
    ) {
        let slo = policy(which_policy, bound, deadline_ms);
        let cfg = config(shards, depth, hashed, slo);
        let num_keys = cfg.base.workload().num_keys;
        let mut frontend = Frontend::new(&cfg).expect("frontend");

        let mut rng = seed;
        let mut next = move |bound: u64| {
            // SplitMix64: deterministic stream driving the request mix.
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % bound
        };

        let mut submitted = 0u64;
        let mut collected: Vec<ReqCompletion> = Vec::new();
        let mut outstanding = Vec::new();
        for _ in 0..ops {
            // Arbitrary arrival gaps: bursts at one instant through
            // multi-second lulls (queues drain, slots free, deadlines
            // pass — every admission branch gets exercised).
            frontend.advance_to(frontend.now() + next(2 * SECOND));
            let kind = if next(2) == 0 { OpKind::Read } else { OpKind::Update };
            let token = frontend
                .submit(Request {
                    kind,
                    key_index: next(num_keys),
                    value: if kind == OpKind::Update { vec![0xAB; 32] } else { Vec::new() },
                    ..Default::default()
                })
                .expect("submit");
            submitted += 1;
            outstanding.push(token);

            // Randomly interleave collection styles.
            match next(4) {
                0 => {
                    if let Some(c) = frontend.poll() {
                        collected.push(c);
                        outstanding.retain(|t| Some(*t) != collected.last().map(|c| c.token));
                    }
                }
                1 if !outstanding.is_empty() => {
                    let token = outstanding.swap_remove(next(outstanding.len() as u64) as usize);
                    collected.push(frontend.wait(token));
                }
                _ => {}
            }
        }
        collected.extend(frontend.wait_all());
        prop_assert_eq!(frontend.pending(), 0);

        // 1. Exactly-once resolution, with a policy-consistent outcome.
        prop_assert_eq!(collected.len() as u64, submitted, "every request resolves");
        let mut tokens: Vec<_> = collected.iter().map(|c| c.token).collect();
        tokens.sort();
        tokens.dedup();
        prop_assert_eq!(tokens.len() as u64, submitted, "no token resolves twice");
        for c in &collected {
            match c.outcome {
                ReqOutcome::Rejected => prop_assert!(
                    matches!(slo, SloPolicy::QueueBound { .. } | SloPolicy::PredictedSojourn { .. }),
                    "only admission policies reject: {c:?}"
                ),
                ReqOutcome::Shed => prop_assert!(
                    matches!(slo, SloPolicy::Deadline { .. }),
                    "only the Deadline policy sheds: {c:?}"
                ),
                ReqOutcome::Throttled => prop_assert!(
                    false,
                    "no tenant declares a quota here, so nothing throttles: {c:?}"
                ),
                ReqOutcome::Served | ReqOutcome::ShardOutOfSpace => {}
            }
        }

        // 2. Turned-away work is free.
        for c in &collected {
            prop_assert!(c.submitted_at <= c.issued_at && c.issued_at <= c.done_at, "{c:?}");
            match c.outcome {
                ReqOutcome::Rejected => {
                    prop_assert_eq!(c.service_ns, 0, "{:?}", c);
                    prop_assert_eq!(c.issued_at, c.submitted_at, "never queued: {:?}", c);
                    prop_assert_eq!(c.done_at, c.submitted_at + REJECT_LATENCY, "{:?}", c);
                }
                ReqOutcome::Shed => {
                    prop_assert_eq!(c.service_ns, 0, "{:?}", c);
                    if let SloPolicy::Deadline { budget_ns } = slo {
                        prop_assert!(
                            c.done_at - c.submitted_at > budget_ns,
                            "shed only past the budget: {c:?}"
                        );
                    }
                }
                ReqOutcome::Served => {
                    prop_assert!(c.service_ns > 0, "served requests do work: {c:?}");
                    let start = c.done_at - c.service_ns;
                    match slo {
                        SloPolicy::PredictedSojourn { deadline_ns } => prop_assert!(
                            start - c.submitted_at <= deadline_ns,
                            "admitted requests start within the deadline: {c:?}"
                        ),
                        SloPolicy::Deadline { budget_ns } => prop_assert!(
                            start - c.submitted_at <= budget_ns,
                            "served requests started within their budget: {c:?}"
                        ),
                        _ => {}
                    }
                }
                ReqOutcome::ShardOutOfSpace | ReqOutcome::Throttled => {
                    prop_assert_eq!(c.service_ns, 0)
                }
            }
        }

        // 3. Bounded inflight: a QueueBound tightens the dispatcher cap.
        let cap = match slo {
            SloPolicy::QueueBound { max_pending } => max_pending.min(depth),
            _ => depth,
        };
        assert_inflight_bounded(&collected, shards, cap);

        // 2b + 5. Per-shard accounting closes exactly, and the engine's
        // busy time is precisely the served requests' service time —
        // rejected and shed requests never touched the device.
        let results = frontend.finish();
        for (index, shard) in results.iter().enumerate() {
            let of = |outcome: ReqOutcome| {
                collected
                    .iter()
                    .filter(|c| c.shard == index && c.outcome == outcome)
                    .count() as u64
            };
            prop_assert_eq!(shard.slo.served, of(ReqOutcome::Served));
            prop_assert_eq!(shard.slo.rejected, of(ReqOutcome::Rejected));
            prop_assert_eq!(shard.slo.shed, of(ReqOutcome::Shed));
            // Out-of-space completions are either dead-shard drops
            // (never admitted) or admitted requests that hit ENOSPC, so
            // the exact identity folds them in on both sides.
            prop_assert_eq!(
                shard.slo.offered,
                shard.slo.rejected
                    + shard.slo.served
                    + shard.slo.shed
                    + of(ReqOutcome::ShardOutOfSpace)
            );
            prop_assert!(shard.slo.admitted >= shard.slo.served + shard.slo.shed);
            prop_assert!(shard.slo.offered >= shard.slo.admitted + shard.slo.rejected);
            let served_service: u64 = collected
                .iter()
                .filter(|c| c.shard == index && c.outcome == ReqOutcome::Served)
                .map(|c| c.service_ns)
                .sum();
            prop_assert_eq!(
                shard.load.busy_ns,
                served_service,
                "device time must come only from served requests (shard {})",
                index
            );
            prop_assert_eq!(shard.queue_delay.count(), shard.slo.served);
        }
    }
}
