//! Property tests of the serving front-end dispatcher.
//!
//! Arbitrary request streams — random kinds, keys, inter-submission
//! gaps, shard counts, routing modes and dispatcher depths, with
//! completions collected through a random mix of `take`/`poll`/
//! `wait`/`wait_all` — must uphold the dispatcher's three contracts:
//!
//! 1. **exactly-once completion**: every submitted request produces
//!    exactly one completion record, under any collection pattern;
//! 2. **timestamp sanity**: `submitted_at <= issued_at <= done_at`,
//!    submission times never decrease along the stream, and
//!    `queue_delay + service == sojourn`;
//! 3. **bounded inflight**: at no virtual instant does a shard hold
//!    more admitted-but-incomplete requests than the configured
//!    dispatcher depth (departures at time `t` free their slot before
//!    admissions at `t`, the `IoQueue` discipline).

use proptest::prelude::*;

use ptsbench_core::frontend::FrontendRun;
use ptsbench_core::registry::EngineKind;
use ptsbench_core::runner::RunConfig;
use ptsbench_core::sharded::Sharding;
use ptsbench_harness::{Frontend, ReqCompletion, ReqOutcome, Request};
use ptsbench_ssd::MINUTE;
use ptsbench_workload::OpKind;

/// A small stack per case: 16 MiB shards (the SSD1 geometry floor) and
/// a thin dataset so debug-mode bulk loads stay cheap.
fn config(shards: usize, depth: usize, hashed: bool) -> FrontendRun {
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine: EngineKind::lsm(),
            device_bytes: (shards as u64) * (16 << 20),
            dataset_fraction: 0.1,
            duration: 30 * MINUTE,
            sample_window: 10 * MINUTE,
            ..RunConfig::default()
        },
        shards,
    );
    cfg.shards = shards;
    cfg.queue_depth = depth;
    cfg.sharding = if hashed {
        Sharding::Hashed
    } else {
        Sharding::Contiguous
    };
    cfg
}

/// Sweeps each shard's admission intervals and asserts the concurrent
/// count never exceeds `depth`. Departures sort before arrivals at the
/// same instant: a slot whose completion time has arrived is free.
fn assert_inflight_bounded(completions: &[ReqCompletion], shards: usize, depth: usize) {
    for shard in 0..shards {
        let mut events: Vec<(u64, i64)> = Vec::new();
        for c in completions
            .iter()
            .filter(|c| c.shard == shard && c.outcome == ReqOutcome::Served)
        {
            events.push((c.issued_at, 1));
            events.push((c.done_at, -1));
        }
        events.sort_by_key(|&(t, delta)| (t, delta)); // -1 before +1 on ties
        let mut inflight = 0i64;
        let mut max_inflight = 0i64;
        for (_, delta) in events {
            inflight += delta;
            max_inflight = max_inflight.max(inflight);
        }
        assert!(
            max_inflight as usize <= depth,
            "shard {shard}: {max_inflight} in flight exceeds depth {depth}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_request_completes_exactly_once_with_sane_timestamps(
        shards in 1usize..4,
        depth in 1usize..6,
        hashed in any::<bool>(),
        ops in 40usize..160,
        seed in any::<u64>(),
    ) {
        let cfg = config(shards, depth, hashed);
        let num_keys = cfg.base.workload().num_keys;
        let mut frontend = Frontend::new(&cfg).expect("frontend");

        let mut rng = seed;
        let mut next = move |bound: u64| {
            // SplitMix64: deterministic stream driving the request mix.
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % bound
        };

        let mut submitted = 0u64;
        let mut collected: Vec<ReqCompletion> = Vec::new();
        let mut outstanding = Vec::new();
        let mut last_submit_time = 0;
        for _ in 0..ops {
            // Arbitrary arrival gaps, including bursts at the same time.
            frontend.advance_to(frontend.now() + next(2_000_000));
            let kind = if next(2) == 0 { OpKind::Read } else { OpKind::Update };
            let token = frontend
                .submit(Request {
                    kind,
                    key_index: next(num_keys),
                    value: if kind == OpKind::Update { vec![0xAB; 32] } else { Vec::new() },
                    ..Default::default()
                })
                .expect("submit");
            submitted += 1;
            outstanding.push(token);
            prop_assert!(frontend.now() >= last_submit_time);
            last_submit_time = frontend.now();

            // Randomly interleave collection styles.
            match next(4) {
                0 => {
                    if let Some(c) = frontend.poll() {
                        collected.push(c);
                        outstanding.retain(|t| Some(*t) != collected.last().map(|c| c.token));
                    }
                }
                1 if !outstanding.is_empty() => {
                    let token = outstanding.swap_remove(next(outstanding.len() as u64) as usize);
                    collected.push(frontend.wait(token));
                }
                2 if !outstanding.is_empty() => {
                    let token = outstanding.swap_remove(next(outstanding.len() as u64) as usize);
                    if let Some(c) = frontend.take(token) {
                        collected.push(c);
                    }
                }
                _ => {}
            }
        }
        collected.extend(frontend.wait_all());
        prop_assert_eq!(frontend.pending(), 0);

        // 1. Exactly once.
        prop_assert_eq!(collected.len() as u64, submitted, "every request completes");
        let mut tokens: Vec<_> = collected.iter().map(|c| c.token).collect();
        tokens.sort();
        tokens.dedup();
        prop_assert_eq!(tokens.len() as u64, submitted, "no token completes twice");

        // 2. Timestamp sanity.
        for c in &collected {
            prop_assert!(c.submitted_at <= c.issued_at, "{c:?}");
            prop_assert!(c.issued_at <= c.done_at, "{c:?}");
            prop_assert_eq!(c.queue_delay() + c.service_ns, c.sojourn());
            prop_assert!(c.shard < shards);
            if c.outcome == ReqOutcome::Served {
                prop_assert!(c.service_ns > 0, "served requests do work: {c:?}");
            } else {
                prop_assert_eq!(c.service_ns, 0);
            }
        }

        // 3. Bounded per-shard inflight.
        assert_inflight_bounded(&collected, shards, depth);
    }
}
