//! Property tests of the multi-tenant serving front-end.
//!
//! Arbitrary request streams — random classes, tenants, kinds, keys,
//! inter-submission gaps, shard counts, dispatch disciplines and
//! tenant quotas — must uphold the subsystem's contracts:
//!
//! 1. **exactly-once resolution, now with throttling**: every
//!    submitted request produces exactly one completion, and
//!    `Throttled` appears only for tenants that declared a quota;
//! 2. **throttled work is free**: a throttled request is never queued
//!    (`issued_at == submitted_at`, fixed `REJECT_LATENCY` turnaround)
//!    and consumes no device time;
//! 3. **the token bucket is a hard window invariant**: over the whole
//!    run a quota'd tenant is admitted at most
//!    `rate · elapsed + burst` requests, exactly — and its ledger
//!    closes (`offered == admitted + throttled`, summed across
//!    shards);
//! 4. **class lanes sum to the shard**: per shard, every counter of
//!    the per-class `SloStats` lanes sums to the shard-level counter,
//!    and each lane's queue-delay histogram holds exactly its served
//!    count;
//! 5. **dispatch never reorders within a class**: under FIFO, strict
//!    priority *and* weighted fair queueing, same-class requests on a
//!    shard start service in submission order — the structural
//!    guarantee that no discipline starves a request in favor of its
//!    own classmates;
//! 6. **promotion serves the oldest**: under strict priority, a
//!    lower-priority request starts ahead of a waiting higher-priority
//!    one only when it is the oldest waiting request on the shard and
//!    its age exceeds `promote_after_ns`.
//!
//! A plain unit test at the bottom exercises the `RateBudget`
//! re-export shared with the maintenance scheduler: one bucket,
//! interleaved overdraft (maintenance) and strict (tenant) charges.

use proptest::prelude::*;

use ptsbench_core::frontend::{DispatchDiscipline, FrontendRun, TenantQuota, TenantSpec};
use ptsbench_core::registry::EngineKind;
use ptsbench_core::runner::RunConfig;
use ptsbench_core::sharded::Sharding;
use ptsbench_core::ReqClass;
use ptsbench_harness::{Frontend, ReqCompletion, ReqOutcome, Request, REJECT_LATENCY};
use ptsbench_ssd::{Ns, MILLISECOND, MINUTE, SECOND};
use ptsbench_workload::OpKind;

/// A small stack per case: 16 MiB shards, thin dataset, two tenants —
/// tenant 0 unthrottled, tenant 1 behind a token bucket.
fn config(
    shards: usize,
    hashed: bool,
    discipline: DispatchDiscipline,
    quota: TenantQuota,
) -> FrontendRun {
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine: EngineKind::lsm(),
            device_bytes: (shards as u64) * (16 << 20),
            dataset_fraction: 0.1,
            duration: 30 * MINUTE,
            sample_window: 10 * MINUTE,
            ..RunConfig::default()
        },
        2,
    );
    cfg.shards = shards;
    cfg.sharding = if hashed {
        Sharding::Hashed
    } else {
        Sharding::Contiguous
    };
    cfg.discipline = discipline;
    let mut throttled = TenantSpec::new(ReqClass::Batch, 1);
    throttled.quota = Some(quota);
    cfg.tenants = vec![TenantSpec::new(ReqClass::Interactive, 1), throttled];
    cfg.validate();
    cfg
}

/// One of the three disciplines, drawn from an index + parameters.
fn discipline(which: u8, promote_ms: u64, weights: [u32; 3]) -> DispatchDiscipline {
    match which % 3 {
        0 => DispatchDiscipline::Fifo,
        1 => DispatchDiscipline::StrictPriority {
            promote_after_ns: promote_ms * MILLISECOND,
        },
        _ => DispatchDiscipline::WeightedFair { weights },
    }
}

fn class(index: u64) -> ReqClass {
    ReqClass::ALL[(index % 3) as usize]
}

/// Service start of a served completion (the dispatch instant).
fn start(c: &ReqCompletion) -> Ns {
    c.done_at - c.service_ns
}

/// SplitMix64 — the deterministic stream driving each case's requests.
fn splitmix(state: &mut u64, bound: u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % bound
}

/// Drives `ops` random submissions through a fresh front-end and
/// returns the completions plus the per-shard results.
fn drive(
    cfg: &FrontendRun,
    ops: usize,
    seed: u64,
) -> (
    Vec<ReqCompletion>,
    Vec<ptsbench_harness::FrontendShardResult>,
    Ns,
) {
    let num_keys = cfg.base.workload().num_keys;
    let mut frontend = Frontend::new(cfg).expect("frontend");
    let mut rng = seed;
    let mut collected = Vec::new();
    for _ in 0..ops {
        frontend.advance_to(frontend.now() + splitmix(&mut rng, 2 * SECOND));
        let kind = if splitmix(&mut rng, 2) == 0 {
            OpKind::Read
        } else {
            OpKind::Update
        };
        frontend
            .submit(Request {
                kind,
                key_index: splitmix(&mut rng, num_keys),
                value: if kind == OpKind::Update {
                    vec![0xAB; 32]
                } else {
                    Vec::new()
                },
                class: class(splitmix(&mut rng, 3)),
                tenant: splitmix(&mut rng, 2) as u32,
            })
            .expect("submit");
        if splitmix(&mut rng, 4) == 0 {
            if let Some(c) = frontend.poll() {
                collected.push(c);
            }
        }
    }
    let last_submit = frontend.now();
    collected.extend(frontend.wait_all());
    assert_eq!(frontend.pending(), 0);
    (collected, frontend.finish(), last_submit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Contracts 1–4: exactly-once with throttling, free throttled
    /// work, the token-bucket window invariant, and lane-sum
    /// accounting — under every discipline.
    #[test]
    fn tenant_quotas_throttle_exactly_and_lanes_sum_to_the_shard(
        shards in 1usize..4,
        hashed in any::<bool>(),
        which_disc in any::<u8>(),
        promote_ms in 1u64..3_000,
        w0 in 1u32..9, w1 in 1u32..9, w2 in 1u32..9,
        rate in 0u64..40,
        burst in 0u64..8,
        ops in 40usize..160,
        seed in any::<u64>(),
    ) {
        let quota = TenantQuota { rate_ops_per_sec: rate, burst_ops: burst };
        let cfg = config(shards, hashed, discipline(which_disc, promote_ms, [w0, w1, w2]), quota);
        let (collected, results, last_submit) = drive(&cfg, ops, seed);

        // 1. Exactly-once, and Throttled only from the quota'd tenant.
        prop_assert_eq!(collected.len(), ops, "every request resolves");
        let mut tokens: Vec<_> = collected.iter().map(|c| c.token).collect();
        tokens.sort();
        tokens.dedup();
        prop_assert_eq!(tokens.len(), ops, "no token resolves twice");
        for c in &collected {
            if c.outcome == ReqOutcome::Throttled {
                prop_assert_eq!(c.tenant, 1, "only the quota'd tenant throttles: {:?}", c);
                // 2. Throttled work is free.
                prop_assert_eq!(c.service_ns, 0, "{:?}", c);
                prop_assert_eq!(c.issued_at, c.submitted_at, "never queued: {:?}", c);
                prop_assert_eq!(c.done_at, c.submitted_at + REJECT_LATENCY, "{:?}", c);
            }
        }

        // 3. The hard window invariant: tenant 1 passed the bucket at
        // most rate·elapsed + burst times (the bucket starts full at
        // t = 0 and the last charge is at `last_submit`).
        let admitted_1 = collected
            .iter()
            .filter(|c| c.tenant == 1 && c.outcome != ReqOutcome::Throttled)
            .count() as u64;
        let allowance =
            (last_submit as u128 * rate as u128 / 1_000_000_000) as u64 + burst;
        prop_assert!(
            admitted_1 <= allowance,
            "bucket overdraft: {admitted_1} > {allowance} (rate {rate}, burst {burst})"
        );

        // ...and the fleet-summed ledgers close against the stream.
        let mut ledgers = [(0u64, 0u64, 0u64); 2];
        for shard in &results {
            for (id, t) in shard.mt.tenants.iter().enumerate() {
                ledgers[id].0 += t.offered;
                ledgers[id].1 += t.admitted;
                ledgers[id].2 += t.throttled;
            }
        }
        for (id, (offered, admitted, throttled)) in ledgers.iter().enumerate() {
            let sent = collected.iter().filter(|c| c.tenant == id as u32).count() as u64;
            prop_assert_eq!(*offered, sent, "tenant {} ledger covers its stream", id);
            prop_assert_eq!(*offered, admitted + throttled, "tenant {} ledger closes", id);
        }
        prop_assert_eq!(ledgers[1].1, admitted_1);
        prop_assert_eq!(ledgers[0].2, 0, "no quota, no throttling");

        // 4. Per shard, class lanes sum to the shard-level counters,
        // and each lane's queue-delay histogram is exactly its served
        // set.
        for shard in &results {
            let lanes = &shard.mt.classes;
            let sum = |f: fn(&ptsbench_metrics::SloStats) -> u64| {
                lanes.iter().map(|l| f(&l.slo)).sum::<u64>()
            };
            prop_assert_eq!(sum(|s| s.offered), shard.slo.offered);
            prop_assert_eq!(sum(|s| s.admitted), shard.slo.admitted);
            prop_assert_eq!(sum(|s| s.rejected), shard.slo.rejected);
            prop_assert_eq!(sum(|s| s.shed), shard.slo.shed);
            prop_assert_eq!(sum(|s| s.throttled), shard.slo.throttled);
            prop_assert_eq!(sum(|s| s.served), shard.slo.served);
            for lane in lanes {
                prop_assert_eq!(lane.queue_delay.count(), lane.slo.served);
            }
        }
    }

    /// Contracts 5–6: no discipline reorders a class against itself,
    /// and strict-priority inversions happen only through promotion of
    /// the oldest waiting request. (No admission policy here: every
    /// admitted request runs, so the waiting room is fully
    /// reconstructible from the completions.)
    #[test]
    fn dispatch_preserves_class_order_and_promotes_only_the_oldest(
        shards in 1usize..3,
        hashed in any::<bool>(),
        which_disc in any::<u8>(),
        promote_ms in 1u64..3_000,
        w0 in 1u32..9, w1 in 1u32..9, w2 in 1u32..9,
        ops in 40usize..120,
        seed in any::<u64>(),
    ) {
        let disc = discipline(which_disc, promote_ms, [w0, w1, w2]);
        // A burst far beyond the op count: the quota machinery is wired
        // in but never throttles, so every submission is admitted and
        // the waiting room is reconstructible from the completions.
        let quota = TenantQuota { rate_ops_per_sec: 1, burst_ops: 1 << 20 };
        let cfg = config(shards, hashed, disc, quota);
        let (collected, _, _) = drive(&cfg, ops, seed);

        let served: Vec<&ReqCompletion> = collected
            .iter()
            .filter(|c| c.outcome == ReqOutcome::Served)
            .collect();

        // 5. Within a (shard, class), service starts in token order —
        // tokens are issued in submission order, so this is FIFO
        // within the class under every discipline.
        for shard in 0..shards {
            for class in ReqClass::ALL {
                let mut lane: Vec<&&ReqCompletion> = served
                    .iter()
                    .filter(|c| c.shard == shard && c.class == class)
                    .collect();
                lane.sort_by_key(|c| c.token);
                for pair in lane.windows(2) {
                    prop_assert!(
                        start(pair[0]) <= start(pair[1]),
                        "same-class reorder on shard {shard}: {:?} vs {:?}",
                        pair[0],
                        pair[1]
                    );
                }
            }
        }

        // 6. Priority inversions only through aged promotion: if b
        // (lower priority) started while a (strictly higher priority,
        // already waiting) had not, then b was the oldest waiting
        // request and older than the promotion age.
        if let DispatchDiscipline::StrictPriority { promote_after_ns } = disc {
            for b in &served {
                let waiting: Vec<&&ReqCompletion> = served
                    .iter()
                    .filter(|a| {
                        a.shard == b.shard
                            && a.issued_at < start(b)
                            && start(a) > start(b)
                    })
                    .collect();
                let inverted = waiting
                    .iter()
                    .any(|a| a.class.priority() < b.class.priority());
                if inverted {
                    prop_assert!(
                        start(b) - b.issued_at > promote_after_ns,
                        "inversion without an aged request: {:?}",
                        b
                    );
                    for a in &waiting {
                        prop_assert!(
                            b.issued_at <= a.issued_at,
                            "promotion must pick the oldest: {:?} vs {:?}",
                            b,
                            a
                        );
                    }
                }
            }
        }
    }
}

/// The `RateBudget` re-export is one primitive shared by two callers:
/// the maintenance scheduler charges with overdraft (`charge`), the
/// tenant throttle charges strictly (`try_charge`). Interleaved on one
/// bucket, the strict side must be denied exactly while the overdraft
/// side holds the balance below the charge — the behavior a combined
/// "maintenance + tenants" deployment depends on.
#[test]
fn rate_budget_reexport_serves_maintenance_and_tenant_callers_on_one_bucket() {
    use ptsbench_metrics::RateBudget;

    let mut shared = RateBudget::new(1_000, 10, 0);
    // The tenant side spends the burst...
    for i in 0..10 {
        assert!(shared.try_charge(0, 1), "burst charge {i}");
    }
    assert!(!shared.try_charge(0, 1), "burst spent");
    // ...then maintenance overdrafts on top: the bucket goes into debt
    // and the strict side stays denied until the refill clears it.
    shared.charge(0, 5);
    assert_eq!(shared.balance(), -5);
    assert!(!shared.try_charge(0, 1), "strict charges never overdraw");
    let ready = shared.ready_at(0);
    assert_eq!(ready, 5 * MILLISECOND, "5 units of debt at 1000/s");
    assert!(
        !shared.try_charge(ready, 1),
        "at ready_at the balance is exactly zero — still short of 1"
    );
    assert!(
        shared.try_charge(ready + MILLISECOND, 1),
        "refilled past the debt"
    );
    // Over the whole window the combined spend stays within the
    // documented overdraft bound: rate·W + burst + max single charge.
    let window = ready + MILLISECOND;
    let spent = 10 + 5 + 1;
    assert!(spent <= (window * 1_000) / 1_000_000_000 + 10 + 5);
}
