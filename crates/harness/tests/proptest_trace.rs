//! Property tests of the flight recorder and the traced serving stack.
//!
//! Two layers of properties:
//!
//! 1. **The recorder alone**: arbitrary interleavings of
//!    `begin`/`leaf`/`end` with arbitrary (monotone) virtual times must
//!    leave the ring well-formed — sequential ids, `start <= end`
//!    everywhere, every retained child inside its retained parent's
//!    interval, and the ring bound honored exactly.
//! 2. **The full traced stack**: arbitrary small serving fleets (shard
//!    count, fan-in, engine, key distribution, read mix) with the
//!    flight recorder on must produce well-formed span forests — one
//!    `req.*` root per measured request, every engine op nested under a
//!    request — and per-cause device byte totals that close exactly
//!    against the SMART host counters.

use proptest::prelude::*;

use ptsbench_core::frontend::FrontendRun;
use ptsbench_core::registry::{EngineKind, EngineRegistry};
use ptsbench_core::runner::RunConfig;
use ptsbench_harness::run_frontend_with_results;
use ptsbench_ssd::MINUTE;
use ptsbench_trace::{Cause, Span, TraceRecorder};
use ptsbench_workload::KeyDistribution;

fn engines() -> Vec<EngineKind> {
    ptsbench_hashlog::register();
    EngineRegistry::all()
}

/// A small traced fleet: 16 MiB shards, thin dataset, short phases —
/// cheap enough for debug-mode property cases.
fn config(
    engine: EngineKind,
    shards: usize,
    fan_in: usize,
    zipf: bool,
    read_fraction: f64,
) -> FrontendRun {
    let mut cfg = FrontendRun::new(
        RunConfig {
            engine,
            device_bytes: (shards as u64) * (16 << 20),
            dataset_fraction: 0.1,
            duration: 30 * MINUTE,
            sample_window: 10 * MINUTE,
            read_fraction,
            distribution: if zipf {
                KeyDistribution::Zipfian { theta: 0.9 }
            } else {
                KeyDistribution::Uniform
            },
            trace: true,
            ..RunConfig::default()
        },
        fan_in,
    );
    cfg.shards = shards;
    cfg
}

/// Checks the structural span invariants on one recorder's retained
/// ring: `start <= end`, children inside parents, roots all `req.*`
/// when nothing was evicted.
fn assert_well_formed(spans: &[Span], dropped: u64, ops_executed: u64) {
    let by_id: std::collections::HashMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    for s in spans {
        assert!(
            s.start <= s.end,
            "span must not end before it starts: {s:?}"
        );
        if let Some(p) = s.parent {
            // Evicted parents are only possible once the ring dropped
            // spans; with `dropped == 0` every parent is retained.
            let Some(parent) = by_id.get(&p) else {
                assert!(dropped > 0, "missing parent without eviction: {s:?}");
                continue;
            };
            assert!(
                parent.start <= s.start && s.end <= parent.end,
                "child must nest inside its parent: {s:?} in {parent:?}"
            );
        }
        if s.name.starts_with("op.") {
            assert!(
                s.parent.is_some(),
                "engine ops under the front-end always run inside a request: {s:?}"
            );
        }
    }
    if dropped == 0 {
        let roots: Vec<&Span> = spans.iter().filter(|s| s.parent.is_none()).collect();
        for r in &roots {
            assert!(
                r.name.starts_with("req."),
                "every root of a traced serving run is a request: {r:?}"
            );
        }
        assert_eq!(
            roots.len() as u64,
            ops_executed,
            "one root span per measured request"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Layer 1: the recorder stays well-formed under arbitrary
    /// begin/leaf/end interleavings with arbitrary time steps.
    #[test]
    fn recorder_invariants_hold_under_arbitrary_interleavings(
        steps in proptest::collection::vec((0u8..3, 0u64..1000), 1..200),
        capacity in 1usize..64,
    ) {
        let mut rec = TraceRecorder::with_capacity(capacity);
        let mut now = 0u64;
        let mut open: Vec<u64> = Vec::new();
        for (kind, dt) in steps {
            now += dt;
            match kind {
                0 => open.push(rec.begin("phase", Cause::Other, now)),
                1 => rec.leaf("leaf", Cause::Other, now, now + dt),
                _ => {
                    if let Some(id) = open.pop() {
                        rec.end(id, now);
                    }
                }
            }
        }
        // Close whatever is still open, newest first.
        while let Some(id) = open.pop() {
            now += 1;
            rec.end(id, now);
        }
        prop_assert_eq!(rec.open_depth(), 0);
        prop_assert!(rec.len() <= capacity, "ring bound");

        let spans: Vec<Span> = rec.spans().copied().collect();
        let by_id: std::collections::HashMap<u64, &Span> =
            spans.iter().map(|s| (s.id, s)).collect();
        prop_assert_eq!(by_id.len(), spans.len(), "span ids are unique");
        for s in &spans {
            prop_assert!(s.start <= s.end, "{:?}", s);
            prop_assert!(s.id > 0, "ids start at 1: {:?}", s);
            if let Some(p) = s.parent {
                prop_assert!(p < s.id, "parents begin before their children: {:?}", s);
                if let Some(parent) = by_id.get(&p) {
                    prop_assert!(
                        parent.start <= s.start && s.end <= parent.end,
                        "nesting: {:?} in {:?}", s, parent
                    );
                } else {
                    prop_assert!(rec.dropped() > 0, "missing parent: {:?}", s);
                }
            }
        }
    }

    /// Layer 2: arbitrary small traced fleets produce well-formed span
    /// forests and exact per-cause byte accounting, for every engine.
    #[test]
    fn traced_fleets_produce_well_formed_spans_and_exact_accounting(
        engine_idx in 0usize..3,
        shards in 1usize..3,
        fan_in in 1usize..7,
        zipf in any::<bool>(),
        reads in 0usize..3,
    ) {
        let engine = engines()[engine_idx % engines().len()];
        let read_fraction = [0.0, 0.5, 1.0][reads];
        let cfg = config(engine, shards, fan_in, zipf, read_fraction);
        let outcome = run_frontend_with_results(&cfg).expect("traced run");

        prop_assert_eq!(outcome.shard_results.len(), shards);
        let fleet_ops: u64 = outcome.shard_results.iter().map(|r| r.ops_executed).sum();
        prop_assert!(fleet_ops > 0, "a measured phase executes requests");
        for r in &outcome.shard_results {
            // Per-cause device bytes close exactly against SMART.
            let cause = r.cause.expect("traced runs attribute device traffic");
            prop_assert_eq!(
                cause.total_bytes_written(),
                r.host_bytes_written,
                "per-cause written bytes must sum to host writes"
            );
            prop_assert_eq!(
                cause.total_bytes_read(),
                r.host_bytes_read,
                "per-cause read bytes must sum to host reads"
            );

            // Span forest well-formedness.
            let rec = r.recorder.as_ref().expect("traced runs keep spans");
            let rec = rec.lock();
            prop_assert_eq!(rec.open_depth(), 0, "no span outlives its run");
            let spans: Vec<Span> = rec.spans().copied().collect();
            assert_well_formed(&spans, rec.dropped(), r.ops_executed);
        }
    }
}
