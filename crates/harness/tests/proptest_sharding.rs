//! Property tests of the sharding decomposition.
//!
//! The harness's correctness rests on two algebraic facts, checked here
//! against the unsharded single-client baseline:
//!
//! 1. splitting a workload into `k` shards partitions the key space
//!    exactly (every generated key has exactly one owning shard);
//! 2. routing a read-only op stream by key ownership and merging the
//!    per-shard latency histograms reproduces the unsharded histogram
//!    *exactly* — same totals, same quantile buckets — so nothing is
//!    lost or double-counted by per-client measurement.

use proptest::prelude::*;

use ptsbench_metrics::LatencyHistogram;
use ptsbench_workload::{KeyDistribution, OpGenerator, OpKind, WorkloadSpec};

/// Deterministic synthetic per-op latency: spreads keys over several
/// histogram buckets without involving a device model.
fn synthetic_latency_ns(key_index: u64) -> u64 {
    1_000 + (key_index % 97) * 3_731
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merged per-shard histograms of a routed read-only stream equal
    /// the unsharded run's histogram: same totals, same quantile
    /// buckets, same extremes.
    #[test]
    fn sharded_histograms_merge_to_the_unsharded_run(
        shards in 1usize..9,
        num_keys in 64u64..2_000,
        ops in 100usize..2_000,
        seed in any::<u64>(),
        zipf in any::<bool>(),
    ) {
        let spec = WorkloadSpec {
            num_keys,
            read_fraction: 1.0,
            distribution: if zipf {
                KeyDistribution::Zipfian { theta: 0.9 }
            } else {
                KeyDistribution::Uniform
            },
            seed,
            ..WorkloadSpec::default()
        };
        let slices = spec.split(shards);

        // The unsharded single-client run...
        let mut reference = LatencyHistogram::new();
        // ...and the same stream routed to per-shard histograms by key
        // ownership.
        let mut per_shard: Vec<LatencyHistogram> =
            (0..shards).map(|_| LatencyHistogram::new()).collect();

        let mut generator = OpGenerator::new(spec.clone());
        for _ in 0..ops {
            let (kind, key_index) = {
                let op = generator.next_op();
                (op.kind, op.key_index)
            };
            prop_assert_eq!(kind, OpKind::Read, "read-only workload");
            let latency = synthetic_latency_ns(key_index);
            reference.record(latency);
            let owners: Vec<usize> = slices
                .iter()
                .enumerate()
                .filter(|(_, s)| s.owns_key(key_index))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(
                owners.len(),
                1,
                "key {} must have exactly one owning shard",
                key_index
            );
            per_shard[owners[0]].record(latency);
        }

        let mut merged = LatencyHistogram::new();
        for h in &per_shard {
            merged.merge(h);
        }
        prop_assert_eq!(merged.count(), reference.count(), "same totals");
        prop_assert_eq!(merged.min(), reference.min());
        prop_assert_eq!(merged.max(), reference.max());
        prop_assert!((merged.mean() - reference.mean()).abs() < 1e-6);
        for q in [0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(
                merged.quantile(q),
                reference.quantile(q),
                "quantile {} bucket must match",
                q
            );
        }
    }

    /// Independent per-shard generators draw only from their own slice,
    /// and the slices tile the parent key space.
    #[test]
    fn per_shard_generators_partition_the_key_space(
        shards in 1usize..9,
        num_keys in 64u64..2_000,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec {
            num_keys,
            seed,
            ..WorkloadSpec::default()
        };
        let slices = spec.split(shards);
        let mut covered = 0u64;
        for slice in &slices {
            covered += slice.num_keys;
            let lo = slice.key_base;
            let hi = slice.key_end();
            let mut g = OpGenerator::new(slice.clone());
            for _ in 0..64 {
                let idx = g.next_op().key_index;
                prop_assert!(idx >= lo && idx < hi);
            }
        }
        prop_assert_eq!(covered, num_keys, "slices must tile the key space");
    }
}
