//! The virtual-time serving front-end: clients → dispatcher → shard
//! queues → engines.
//!
//! This is the [`IoQueue`](ptsbench_ssd::IoQueue) submission/completion
//! pattern lifted one level up the stack. A [`Frontend`] owns a fleet
//! of shard experiments (the same per-shard simulations the sharded
//! harness drives); [`Frontend::submit`] hands it a [`Request`]
//! **without advancing the front-end clock** and returns a
//! [`ReqToken`]; completions are collected with [`Frontend::poll`] /
//! [`Frontend::wait`] / [`Frontend::wait_all`] and carry three
//! timestamps —
//!
//! * `submitted_at` — when the client submitted,
//! * `issued_at` — when the dispatcher admitted the request into its
//!   shard's bounded queue (later than `submitted_at` when the queue
//!   was full, exactly like a stalled submission into a full
//!   `IoQueue`),
//! * `done_at` — when the shard's engine completed it,
//!
//! — so queueing delay (`done_at - submitted_at - service_ns`) is
//! separable from device/engine latency (`service_ns`). Each shard is a
//! single server: under the default FIFO [`DispatchDiscipline`]
//! admitted requests are serviced in admission order on the shard's
//! private simulated stack, and at most `FrontendRun::queue_depth`
//! requests may be admitted-but-incomplete at once (property-tested in
//! `tests/proptest_frontend.rs`). A reordering discipline (strict
//! priority with age promotion, weighted-fair queueing) instead admits
//! into a waiting room and decides service order lazily, by
//! [`ReqClass`], as virtual time reaches each dispatch instant;
//! per-tenant token buckets throttle over-quota submissions before any
//! of that (property-tested in `tests/proptest_tenant.rs`).
//!
//! Because service times are computed at submission from deterministic
//! per-shard state, a fixed request stream produces byte-identical
//! completions run-to-run; [`run_frontend`] drives seeded arrival
//! processes on top, so whole serving experiments — including the
//! `fig_tail` fan-in sweep — inherit the repo's run-twice-diff CI
//! pattern unchanged.

use ptsbench_core::engine::PtsError;
use ptsbench_core::frontend::{ClientBinding, DispatchDiscipline, FrontendRun, SloPolicy};
use ptsbench_core::measure::{Experiment, Served};
use ptsbench_core::runner::RunResult;
use ptsbench_core::sharded::Sharding;
use ptsbench_metrics::histogram::LatencyHistogram;
use ptsbench_metrics::load::ShardLoad;
use ptsbench_metrics::mt::{MtStats, ReqClass, TenantId};
use ptsbench_metrics::runreport::RunReport;
use ptsbench_metrics::slo::SloStats;
use ptsbench_metrics::RateBudget;
use ptsbench_ssd::{Cause, Ns};
use ptsbench_workload::{encode_key, route_hash, ArrivalClock, ArrivalSpec, OpGenerator, OpKind};

use crate::driver::{base_shard_report, HarnessOutcome};

use std::collections::BTreeMap;

/// Rejection turnaround of a request dropped by an out-of-space shard,
/// in virtual nanoseconds: the error response still takes a round
/// trip. Charging it also guarantees a zero-think closed-loop client
/// retrying a dead shard advances virtual time instead of livelocking
/// at one instant.
pub const DROP_LATENCY: ptsbench_ssd::Ns = ptsbench_ssd::MILLISECOND;

/// Rejection turnaround of a request turned away by an admission
/// policy, in virtual nanoseconds: the dispatcher answers immediately
/// but the response still takes a round trip, and — exactly like
/// [`DROP_LATENCY`] — a nonzero turnaround keeps a zero-think
/// closed-loop client that retries a rejecting shard advancing virtual
/// time instead of livelocking at one instant.
pub const REJECT_LATENCY: ptsbench_ssd::Ns = ptsbench_ssd::MILLISECOND;

/// One client request entering the front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Read or update.
    pub kind: OpKind,
    /// Global key index (encoded to the workload's fixed-width key on
    /// dispatch).
    pub key_index: u64,
    /// Value payload for updates (ignored for reads).
    pub value: Vec<u8>,
    /// The request's scheduling class
    /// ([`ReqClass::Interactive`] by default — class-less callers get
    /// the pre-multi-tenant behavior unchanged).
    pub class: ReqClass,
    /// The submitting tenant (tenant 0 — the implicit single tenant —
    /// by default; quotas apply only to tenants the run declared).
    pub tenant: TenantId,
}

impl Default for Request {
    /// An interactive tenant-0 read of key 0 — the neutral template
    /// struct-update syntax fills class-less requests from.
    fn default() -> Self {
        Self {
            kind: OpKind::Read,
            key_index: 0,
            value: Vec::new(),
            class: ReqClass::Interactive,
            tenant: 0,
        }
    }
}

/// Handle to one submitted (not yet collected) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqToken(u64);

/// How a request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqOutcome {
    /// Executed by its shard's engine.
    Served,
    /// Dropped: the owning shard had run (or ran) out of space.
    ShardOutOfSpace,
    /// Turned away at submission by the admission policy
    /// ([`SloPolicy::QueueBound`] / [`SloPolicy::PredictedSojourn`]):
    /// never queued, never touched the device. Completes after a fixed
    /// [`REJECT_LATENCY`] turnaround.
    Rejected,
    /// Admitted, but dropped at dispatch time because it was already
    /// past its [`SloPolicy::Deadline`] budget when the engine would
    /// have started it: queued, but never touched the device. Completes
    /// at the instant it was shed.
    Shed,
    /// Turned away by the submitting tenant's token-bucket quota before
    /// admission control even saw it: never queued, never touched the
    /// device. Completes after a fixed [`REJECT_LATENCY`] turnaround,
    /// exactly like a policy rejection.
    Throttled,
}

/// The completion record of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqCompletion {
    /// The token returned by the submission.
    pub token: ReqToken,
    /// The shard the dispatcher routed the request to.
    pub shard: usize,
    /// The request's operation kind.
    pub kind: OpKind,
    /// The request's global key index.
    pub key_index: u64,
    /// Front-end virtual time at submission.
    pub submitted_at: Ns,
    /// When the dispatcher admitted the request into the shard queue
    /// (`> submitted_at` when the bounded queue was full).
    pub issued_at: Ns,
    /// When the shard's engine completed the request.
    pub done_at: Ns,
    /// Engine service time (device I/O + CPU charge); 0 for dropped,
    /// rejected, shed and throttled requests, which never reach the
    /// device.
    pub service_ns: Ns,
    /// Served, dropped, rejected, shed or throttled.
    pub outcome: ReqOutcome,
    /// The request's scheduling class (copied from the submission).
    pub class: ReqClass,
    /// The submitting tenant (copied from the submission).
    pub tenant: TenantId,
    /// Resolution sequence number: the order the front-end *decided*
    /// this completion in, assigned when the outcome became known. The
    /// collector tiebreak ([`Frontend::poll`] / [`Frontend::wait_any`] /
    /// [`Frontend::wait_all`] order by `(done_at, seq)`) — NOT the
    /// token: under a reordering [`DispatchDiscipline`] a later-submitted
    /// interactive request is legitimately decided (and completed)
    /// before an earlier batch one, so token order would silently
    /// re-impose FIFO exactly where the discipline broke it. Under FIFO
    /// dispatch outcomes are decided in submission order, so `seq` order
    /// and token order coincide and pre-multi-tenant collection order is
    /// unchanged.
    pub seq: u64,
}

impl ReqCompletion {
    /// Time spent queueing — everything between submission and service
    /// start: dispatch stall plus in-queue wait. The quantity `fig_tail`
    /// separates from device latency.
    pub fn queue_delay(&self) -> Ns {
        self.done_at - self.submitted_at - self.service_ns
    }

    /// Total time in the system (queue delay + service).
    pub fn sojourn(&self) -> Ns {
        self.done_at - self.submitted_at
    }
}

/// One request admitted into a reordering shard's waiting room, not
/// yet decided by the dispatch discipline.
struct WaitingReq {
    token: ReqToken,
    kind: OpKind,
    key_index: u64,
    value: Vec<u8>,
    class: ReqClass,
    tenant: TenantId,
    submitted_at: Ns,
    /// When the request entered the waiting room (= `submitted_at`:
    /// the lazy dispatcher admits immediately; see
    /// [`Frontend::submit`]).
    issued_at: Ns,
    /// WFQ virtual finish tag (0 under strict priority).
    finish_tag: u128,
}

/// One shard's state behind the dispatcher.
struct ShardState {
    experiment: Experiment,
    /// Completion times of admitted-but-incomplete requests (the
    /// bounded dispatcher queue, exactly the `IoQueue` slot discipline).
    /// Shed requests occupy a slot from admission until the instant
    /// they are dropped.
    slots: Vec<Ns>,
    /// The single-server serialization point: when the engine frees up.
    busy_until: Ns,
    /// Requests admitted but not yet decided, under a reordering
    /// [`DispatchDiscipline`] only (always empty under FIFO, whose
    /// outcomes are decided eagerly at submission).
    waiting: Vec<WaitingReq>,
    load: ShardLoad,
    queue_delay: LatencyHistogram,
    /// SLO accounting (tracked unconditionally; attached to reports
    /// only when the configured policy is active).
    slo: SloStats,
    /// Multi-tenant accounting: per-class lanes and per-tenant ledgers
    /// (tracked unconditionally; attached to reports only when
    /// [`FrontendRun::mt_active`]).
    mt: MtStats,
    /// Self-clocked WFQ virtual time: the finish tag of the last
    /// dispatched request. New backlog of an idle class starts at this
    /// frontier, which is what makes the discipline work-conserving.
    vtime: u128,
    /// Per-class last-assigned finish tag, so a backlogged class's
    /// arrivals queue behind its own previous work.
    last_finish: [u128; 3],
    /// EWMA of observed service times (α = 1/8, integer arithmetic so
    /// the estimate is deterministic), feeding
    /// [`SloPolicy::PredictedSojourn`]'s sojourn prediction and the
    /// WFQ finish tags. `None` until the first request is served.
    service_ewma: Option<Ns>,
    /// Out of space: nothing more is served.
    dead: bool,
}

impl ShardState {
    /// Predicted service time of the next request: the EWMA of what
    /// this shard actually served, 0 before any observation (the
    /// optimistic prior admits early requests, whose queue delay is
    /// still bounded by the full deadline).
    fn predicted_service(&self) -> Ns {
        self.service_ewma.unwrap_or(0)
    }

    /// Folds a served request's service time into the EWMA. The caller
    /// clamps pathological observations (see the call site): an
    /// estimate that exceeds the admission deadline would reject every
    /// request — including on an idle shard — and nothing could ever
    /// be served to bring it back down.
    fn observe_service(&mut self, service_ns: Ns) {
        self.service_ewma = Some(match self.service_ewma {
            None => service_ns,
            Some(ewma) => (service_ns + 7 * ewma) / 8,
        });
    }

    /// Decays the service estimate by one EWMA step (×7/8). Called on
    /// each [`SloPolicy::PredictedSojourn`] rejection when observations
    /// run unclamped (maintenance mode): a rejection produces no
    /// service observation, so without decay an estimate past the
    /// deadline could never fall and an idle shard would reject
    /// forever. With decay, rejections act as probes — under sustained
    /// overload the still-admitted ops keep the estimate honest, while
    /// on a quiet shard a few rejection turnarounds bring it back under
    /// the deadline and real observations take over again.
    fn decay_service_estimate(&mut self) {
        if let Some(ewma) = self.service_ewma.as_mut() {
            *ewma -= *ewma / 8;
        }
    }
}

/// What one shard produced: its ordinary harness-level [`RunResult`]
/// plus the serving-layer accounting.
pub struct FrontendShardResult {
    /// The shard experiment's result (identical in shape to a sharded
    /// harness shard's).
    pub result: RunResult,
    /// Serving-load accounting (requests routed, busy time).
    pub load: ShardLoad,
    /// Per-request queue-delay distribution (served requests only —
    /// rejected and shed requests never start service).
    pub queue_delay: LatencyHistogram,
    /// SLO accounting: admitted/rejected/shed counts and conformance.
    pub slo: SloStats,
    /// Multi-tenant accounting: per-class lanes (whose SLO counters sum
    /// to `slo`, lane by lane) and per-tenant quota ledgers.
    pub mt: MtStats,
}

/// The serving front-end over a fleet of shard experiments: the
/// `IoQueue` submission/completion pattern one level up. [`submit`]
/// hands in a [`Request`] without advancing the clock; [`poll`] /
/// [`wait`] / [`wait_all`] / [`take`] collect [`ReqCompletion`]s whose
/// timestamps separate queueing delay from service latency.
///
/// Single-threaded by design: virtual time makes concurrency a
/// *modelled* property, not an execution property, so request
/// interleavings are deterministic.
///
/// [`submit`]: Frontend::submit
/// [`poll`]: Frontend::poll
/// [`wait`]: Frontend::wait
/// [`wait_all`]: Frontend::wait_all
/// [`take`]: Frontend::take
pub struct Frontend {
    cfg: FrontendRun,
    shards: Vec<ShardState>,
    /// Contiguous routing table (`slice_bounds`); empty under hashing.
    bounds: Vec<u64>,
    key_size: usize,
    key_end: u64,
    now: Ns,
    next_token: u64,
    /// Resolution counter feeding [`ReqCompletion::seq`].
    next_seq: u64,
    /// Per-tenant token buckets (index = [`TenantId`]), in request
    /// units; `None` for unthrottled tenants. One bucket per tenant
    /// across the whole fleet — a quota caps the tenant, not each
    /// shard.
    buckets: Vec<Option<RateBudget>>,
    pending: BTreeMap<u64, ReqCompletion>,
    key_buf: Vec<u8>,
}

impl Frontend {
    /// Builds the shard fleet (device + filesystem + engine + bulk load
    /// per shard, in shard order). A shard that runs out of space while
    /// loading starts dead — requests routed to it are dropped — which
    /// mirrors how the sharded harness reports such shards.
    pub fn new(cfg: &FrontendRun) -> Result<Self, PtsError> {
        cfg.validate();
        let global = cfg.base.workload();
        let mut shards = Vec::with_capacity(cfg.shards);
        for index in 0..cfg.shards {
            let experiment =
                Experiment::prepare_with(&cfg.shard_config(index), cfg.shard_workload(index))?;
            let dead = experiment.failed_during_load();
            let mut mt = MtStats::new(cfg.tenants.len());
            for lane in &mut mt.classes {
                lane.slo.span_ns = cfg.base.duration;
            }
            shards.push(ShardState {
                experiment,
                slots: Vec::with_capacity(cfg.queue_depth),
                busy_until: 0,
                waiting: Vec::new(),
                load: ShardLoad {
                    span_ns: cfg.base.duration,
                    ..ShardLoad::default()
                },
                queue_delay: LatencyHistogram::new(),
                slo: SloStats {
                    span_ns: cfg.base.duration,
                    ..SloStats::default()
                },
                mt,
                vtime: 0,
                last_finish: [0; 3],
                service_ewma: None,
                dead,
            });
        }
        Ok(Self {
            buckets: cfg
                .tenants
                .iter()
                .map(|t| {
                    t.quota
                        .map(|q| RateBudget::new(q.rate_ops_per_sec, q.burst_ops, 0))
                })
                .collect(),
            bounds: match cfg.sharding {
                Sharding::Contiguous => cfg.slice_bounds(),
                Sharding::Hashed => Vec::new(),
            },
            key_size: global.key_size,
            key_end: global.key_end(),
            cfg: cfg.clone(),
            shards,
            now: 0,
            next_token: 0,
            next_seq: 0,
            pending: BTreeMap::new(),
            key_buf: Vec::new(),
        })
    }

    /// Current front-end virtual time (ns since the measured phase
    /// began).
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Moves the front-end clock forward to `t` (never backwards) —
    /// how a driver models request arrival times.
    pub fn advance_to(&mut self, t: Ns) {
        self.now = self.now.max(t);
    }

    /// The shard that owns a key under the configured routing.
    pub fn route(&self, key_index: u64) -> usize {
        assert!(key_index < self.key_end, "key {key_index} out of range");
        match self.cfg.sharding {
            Sharding::Contiguous => self.bounds.partition_point(|&end| end <= key_index),
            Sharding::Hashed => (route_hash(key_index) % self.cfg.shards as u64) as usize,
        }
    }

    /// Requests admitted to `shard` and not yet complete at the current
    /// front-end time (bounded by the configured queue depth under FIFO
    /// dispatch; reordering disciplines add their undecided waiting
    /// room).
    pub fn in_flight(&self, shard: usize) -> usize {
        self.shards[shard]
            .slots
            .iter()
            .filter(|&&done| done > self.now)
            .count()
            + self.shards[shard].waiting.len()
    }

    /// Completions not yet collected.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Whether a shard has run out of space (it drops all requests).
    pub fn shard_dead(&self, shard: usize) -> bool {
        self.shards[shard].dead
    }

    /// Whether every shard has run out of space (nothing can be served
    /// any more).
    pub fn all_shards_dead(&self) -> bool {
        self.shards.iter().all(|s| s.dead)
    }

    /// Submits a request without advancing the front-end clock; returns
    /// its token. The request is routed to its key's shard, held
    /// against the configured [`SloPolicy`], admitted to that shard's
    /// bounded queue (stalling in virtual time while the queue is
    /// full), serviced in admission order by the shard's engine, and
    /// its completion record becomes collectable.
    ///
    /// Requests to a dead (out-of-space) shard are dropped: they
    /// complete with [`ReqOutcome::ShardOutOfSpace`] after a fixed
    /// [`DROP_LATENCY`] rejection turnaround (the error response of a
    /// full shard — also what keeps a zero-think closed-loop client
    /// that retries the dead shard from livelocking virtual time). A
    /// request that *hits* out-of-space kills its shard the same way.
    ///
    /// Under an active admission policy a request may instead resolve
    /// as [`ReqOutcome::Rejected`] (turned away at submission, after a
    /// [`REJECT_LATENCY`] turnaround, never queued) or
    /// [`ReqOutcome::Shed`] ([`SloPolicy::Deadline`] only: queued, but
    /// already past its budget when the engine would start it, dropped
    /// at that instant). Neither consumes any device or engine time.
    /// Hard engine failures return `Err`.
    pub fn submit(&mut self, req: Request) -> Result<ReqToken, PtsError> {
        let shard_idx = self.route(req.key_index);
        let token = ReqToken(self.next_token);
        self.next_token += 1;
        let now = self.now;
        let policy = self.cfg.slo.get(req.class);
        let track_tenants = !self.cfg.tenants.is_empty();
        let shard = &mut self.shards[shard_idx];
        shard.load.requests += 1;
        shard.slo.offered += 1;
        shard.mt.class_mut(req.class).slo.offered += 1;
        if track_tenants {
            shard.mt.tenant_mut(req.tenant).offered += 1;
        }

        let mut completion = ReqCompletion {
            token,
            shard: shard_idx,
            kind: req.kind,
            key_index: req.key_index,
            submitted_at: now,
            issued_at: now,
            done_at: now + DROP_LATENCY,
            service_ns: 0,
            outcome: ReqOutcome::ShardOutOfSpace,
            class: req.class,
            tenant: req.tenant,
            seq: 0,
        };

        // Tenant quota: the token bucket sits in front of *everything*
        // — admission control, the shard queue, even the dead-shard
        // drop path. An over-quota request is turned away at the front
        // door without consuming queue residence or device time, which
        // is the point: one tenant's excess must not take capacity
        // another tenant's SLO depends on. The strict bucket never
        // overdrafts, so over any window `W` the tenant passes at most
        // `rate·W + burst` requests (property-tested in
        // `tests/proptest_tenant.rs`).
        if let Some(Some(bucket)) = self.buckets.get_mut(req.tenant as usize) {
            if !bucket.try_charge(now, 1) {
                shard.slo.throttled += 1;
                shard.mt.class_mut(req.class).slo.throttled += 1;
                shard.mt.tenant_mut(req.tenant).throttled += 1;
                completion.done_at = now + REJECT_LATENCY;
                completion.outcome = ReqOutcome::Throttled;
                self.resolve(completion);
                return Ok(token);
            }
        }
        if track_tenants {
            shard.mt.tenant_mut(req.tenant).admitted += 1;
        }

        if shard.dead {
            shard.load.dropped += 1;
            self.resolve(completion);
            return Ok(token);
        }
        if !self.cfg.discipline.is_fifo() {
            return self.submit_lazy(shard_idx, req, completion, policy);
        }
        let shard = &mut self.shards[shard_idx];
        shard.slots.retain(|&done| done > now);

        // Admission into the bounded shard queue: slots whose
        // completion has passed are free; a full queue stalls the
        // submission (in virtual time) until the earliest outstanding
        // completion frees one — the IoQueue discipline, one level up.
        // Reclamation is planned on a scratch copy: a submission that
        // is rejected below, or fails hard, must leave the live
        // accounting untouched, or a later valid submission would
        // overlap requests the depth should have serialized (the same
        // guard `IoQueue::submit` carries).
        let mut slots = shard.slots.clone();
        let issue = admission_time(&mut slots, self.cfg.queue_depth, now);

        // Admission control: turn the request away *before* it enters
        // the queue — a rejected request must never consume queue
        // residence or device time. `PredictedSojourn` judges the very
        // `issue` time the request would get below, and admission is
        // deterministic, so its deadline is a guarantee on admitted
        // queue delay, not a heuristic.
        let rejected = match policy {
            SloPolicy::QueueBound { max_pending } => shard.slots.len() >= max_pending,
            SloPolicy::PredictedSojourn { deadline_ns } => {
                let predicted_start = issue.max(shard.busy_until);
                predicted_start - now + shard.predicted_service() > deadline_ns
            }
            SloPolicy::None | SloPolicy::Deadline { .. } => false,
        };
        if rejected {
            shard.slo.rejected += 1;
            shard.mt.class_mut(req.class).slo.rejected += 1;
            // Unclamped-estimator recovery (maintenance mode only; see
            // the clamp at the `Served::Done` arm): each rejection
            // decays the service EWMA one step so the estimator can
            // re-probe once pressure subsides instead of wedging.
            if self.cfg.base.maint.enabled {
                if let SloPolicy::PredictedSojourn { .. } = policy {
                    shard.decay_service_estimate();
                }
            }
            completion.done_at = now + REJECT_LATENCY;
            completion.outcome = ReqOutcome::Rejected;
            self.resolve(completion);
            return Ok(token);
        }
        shard.slo.admitted += 1;
        shard.mt.class_mut(req.class).slo.admitted += 1;
        completion.issued_at = issue;
        completion.done_at = issue + DROP_LATENCY;

        // Service: the engine is a single server, so the request starts
        // when both it is admitted and the engine is free.
        let start_lb = issue.max(shard.busy_until);
        if let SloPolicy::Deadline { budget_ns } = policy {
            // Shed at dispatch: the request aged past its budget while
            // queueing, so starting it now would only waste device time
            // on an answer nobody is waiting for. It held a queue slot
            // from admission until this instant.
            if start_lb - now > budget_ns {
                slots.push(start_lb);
                shard.slots = slots;
                shard.slo.shed += 1;
                shard.mt.class_mut(req.class).slo.shed += 1;
                completion.done_at = start_lb;
                completion.outcome = ReqOutcome::Shed;
                self.resolve(completion);
                return Ok(token);
            }
        }
        encode_key(req.key_index, self.key_size, &mut self.key_buf);
        // Request-level spans (traced runs only): a `req.get`/`req.put`
        // root opening at submission, with the dispatch/queue wait as a
        // `req.queue` child, so the engine's `op.*` span — and every
        // phase and device span below it — nests under the request that
        // caused it. Timestamps are front-end (phase-relative) times
        // shifted onto the absolute span timeline.
        let trace = shard.experiment.trace_handle().clone();
        let t0 = shard.experiment.phase_start();
        let req_span = if trace.is_on() {
            let cause = match req.kind {
                OpKind::Update => Cause::Put,
                OpKind::Read => Cause::Get,
            };
            let name = match req.kind {
                OpKind::Update => "req.put",
                OpKind::Read => "req.get",
            };
            let id = trace.tracer().begin(name, cause, t0 + now);
            trace
                .tracer()
                .leaf("req.queue", cause, t0 + now, t0 + start_lb);
            Some(id)
        } else {
            None
        };
        let served = shard
            .experiment
            .serve(start_lb, req.kind, &self.key_buf, &req.value);
        if let Some(id) = req_span {
            // The experiment clock sits at the service completion time,
            // which is exactly where the request span closes.
            trace.end(id);
        }
        match served? {
            Served::Done { start, done } => {
                shard.busy_until = done;
                slots.push(done);
                shard.slots = slots;
                shard.load.served += 1;
                shard.load.busy_ns += done - start;
                shard.queue_delay.record(start - now);
                completion.done_at = done;
                completion.service_ns = done - start;
                completion.outcome = ReqOutcome::Served;
                shard.slo.served += 1;
                let lane = shard.mt.class_mut(req.class);
                lane.slo.served += 1;
                lane.queue_delay.record(start - now);
                lane.starve_max_ns = lane.starve_max_ns.max(start - now);
                // Inline maintenance clamps the estimator's observation
                // to the deadline: an op that absorbs an inline
                // compaction/GC stall can run 30x the typical service
                // time, and folding that in raw can push the EWMA past
                // the deadline — at which point even an idle shard
                // rejects everything, nothing is served, and the
                // estimate can never recover. Beyond the deadline the
                // exact magnitude cannot change any admission decision
                // anyway. With background maintenance enabled the clamp
                // comes off: budgeted slices bound routine stalls, raw
                // observations let admission control see genuine
                // backpressure overload, and the decay-on-reject step
                // (see the rejection branch above) guarantees the
                // estimator re-probes instead of wedging
                // (regression-tested by
                // `maintenance_mode_estimator_runs_unclamped_without_wedging`).
                let estimator_cap = if self.cfg.base.maint.enabled {
                    Ns::MAX
                } else {
                    policy.deadline_ns().unwrap_or(Ns::MAX)
                };
                shard.observe_service(completion.service_ns.min(estimator_cap));
            }
            Served::OutOfSpace => {
                shard.dead = true;
                shard.load.dropped += 1;
            }
        }
        self.resolve(completion);
        Ok(token)
    }

    /// Stamps a decided completion with its resolution sequence number
    /// (see [`ReqCompletion::seq`]) and parks it for collection. Every
    /// outcome — served, dropped, rejected, shed, throttled — resolves
    /// through here, so `seq` is a total order over decisions.
    fn resolve(&mut self, mut completion: ReqCompletion) {
        completion.seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(completion.token.0, completion);
    }

    /// Admission under a reordering [`DispatchDiscipline`]: the request
    /// enters the shard's waiting room *immediately* and [`pump`]
    /// decides its fate when virtual time reaches the dispatch
    /// decision.
    ///
    /// Two deliberate deviations from the eager FIFO model:
    ///
    /// * the waiting room is unbounded — `queue_depth` does not stall
    ///   the submission, because a stalled submission would need to
    ///   know *which* queued request frees a slot first, and that is
    ///   exactly what the discipline only decides later. `QueueBound`
    ///   admission control still applies, over queue slots *plus*
    ///   waiting room;
    /// * [`SloPolicy::PredictedSojourn`] degrades from an exact
    ///   guarantee to a backlog heuristic: it assumes the new request
    ///   starts after the whole current backlog, which reorderings can
    ///   only improve for favored classes (and worsen for disfavored
    ///   ones).
    ///
    /// [`pump`]: Frontend::settle_to
    fn submit_lazy(
        &mut self,
        shard_idx: usize,
        req: Request,
        mut completion: ReqCompletion,
        policy: SloPolicy,
    ) -> Result<ReqToken, PtsError> {
        let now = self.now;
        let token = completion.token;
        let shard = &mut self.shards[shard_idx];
        let backlog = shard.waiting.len() + shard.slots.iter().filter(|&&done| done > now).count();
        let rejected = match policy {
            SloPolicy::QueueBound { max_pending } => backlog >= max_pending,
            SloPolicy::PredictedSojourn { deadline_ns } => {
                let est = shard.predicted_service();
                let queue_ahead = est.saturating_mul(backlog as u64);
                let idle_gap = shard.busy_until.saturating_sub(now);
                idle_gap.saturating_add(queue_ahead).saturating_add(est) > deadline_ns
            }
            SloPolicy::None | SloPolicy::Deadline { .. } => false,
        };
        if rejected {
            shard.slo.rejected += 1;
            shard.mt.class_mut(req.class).slo.rejected += 1;
            if self.cfg.base.maint.enabled {
                if let SloPolicy::PredictedSojourn { .. } = policy {
                    shard.decay_service_estimate();
                }
            }
            completion.done_at = now + REJECT_LATENCY;
            completion.outcome = ReqOutcome::Rejected;
            self.resolve(completion);
            return Ok(token);
        }
        shard.slo.admitted += 1;
        shard.mt.class_mut(req.class).slo.admitted += 1;
        let finish_tag = if let DispatchDiscipline::WeightedFair { weights } = self.cfg.discipline {
            // Self-clocked fair queueing: the virtual start is the
            // later of the dispatcher's virtual time and this class's
            // own last finish tag (a backlogged class queues behind its
            // previous work; an idle class starts at the frontier). The
            // virtual finish adds the estimated service scaled down by
            // the class weight — heavier classes accrue virtual time
            // slower, so they win more dispatch decisions.
            let est = u128::from(shard.predicted_service().max(1));
            let start = shard.vtime.max(shard.last_finish[req.class.index()]);
            let tag = start + est * WFQ_SCALE / u128::from(weights[req.class.index()]);
            shard.last_finish[req.class.index()] = tag;
            tag
        } else {
            0
        };
        shard.waiting.push(WaitingReq {
            token,
            kind: req.kind,
            key_index: req.key_index,
            value: req.value,
            class: req.class,
            tenant: req.tenant,
            submitted_at: now,
            issued_at: now,
            finish_tag,
        });
        Ok(token)
    }

    /// Decides waiting requests on one shard whose service start falls
    /// at or before `horizon`: repeatedly finds the next dispatch
    /// instant (engine free and at least one request present), lets the
    /// discipline pick among the requests present at that instant, and
    /// serves or sheds the pick. A no-op for empty waiting rooms, hence
    /// for FIFO dispatch entirely.
    fn pump(&mut self, shard_idx: usize, horizon: Ns) -> Result<(), PtsError> {
        loop {
            let shard = &mut self.shards[shard_idx];
            if shard.waiting.is_empty() {
                return Ok(());
            }
            let earliest = shard
                .waiting
                .iter()
                .map(|w| w.issued_at)
                .min()
                .expect("non-empty waiting room");
            // The next dispatch decision: the engine is free and at
            // least one request has arrived. Nondecreasing across
            // iterations (serving raises `busy_until` past it; shedding
            // keeps it and removes a request), so per-shard service
            // order is decided in time order.
            let t0 = shard.busy_until.max(earliest);
            if t0 > horizon {
                return Ok(());
            }
            if shard.dead {
                // The shard died with requests still waiting: they all
                // drop, in submission order, with the same turnaround a
                // direct submission to a dead shard gets.
                let mut rest = std::mem::take(&mut shard.waiting);
                rest.sort_by_key(|w| w.token);
                for w in rest {
                    let shard = &mut self.shards[shard_idx];
                    shard.load.dropped += 1;
                    self.resolve(ReqCompletion {
                        token: w.token,
                        shard: shard_idx,
                        kind: w.kind,
                        key_index: w.key_index,
                        submitted_at: w.submitted_at,
                        issued_at: w.issued_at,
                        done_at: t0 + DROP_LATENCY,
                        service_ns: 0,
                        outcome: ReqOutcome::ShardOutOfSpace,
                        class: w.class,
                        tenant: w.tenant,
                        seq: 0,
                    });
                }
                return Ok(());
            }
            let pos = select_next(shard, t0, self.cfg.discipline);
            let w = shard.waiting.remove(pos);
            if let DispatchDiscipline::WeightedFair { .. } = self.cfg.discipline {
                // Self-clocking: virtual time jumps to the dispatched
                // tag, so classes going idle don't bank credit.
                shard.vtime = shard.vtime.max(w.finish_tag);
            }
            let policy = self.cfg.slo.get(w.class);
            let mut completion = ReqCompletion {
                token: w.token,
                shard: shard_idx,
                kind: w.kind,
                key_index: w.key_index,
                submitted_at: w.submitted_at,
                issued_at: w.issued_at,
                done_at: t0 + DROP_LATENCY,
                service_ns: 0,
                outcome: ReqOutcome::ShardOutOfSpace,
                class: w.class,
                tenant: w.tenant,
                seq: 0,
            };
            if let SloPolicy::Deadline { budget_ns } = policy {
                if t0 - w.submitted_at > budget_ns {
                    shard.slo.shed += 1;
                    shard.mt.class_mut(w.class).slo.shed += 1;
                    completion.done_at = t0;
                    completion.outcome = ReqOutcome::Shed;
                    self.resolve(completion);
                    continue;
                }
            }
            encode_key(w.key_index, self.key_size, &mut self.key_buf);
            let trace = shard.experiment.trace_handle().clone();
            let phase0 = shard.experiment.phase_start();
            let req_span = if trace.is_on() {
                let cause = match w.kind {
                    OpKind::Update => Cause::Put,
                    OpKind::Read => Cause::Get,
                };
                let name = match w.kind {
                    OpKind::Update => "req.put",
                    OpKind::Read => "req.get",
                };
                let id = trace.tracer().begin(name, cause, phase0 + w.submitted_at);
                trace
                    .tracer()
                    .leaf("req.queue", cause, phase0 + w.submitted_at, phase0 + t0);
                Some(id)
            } else {
                None
            };
            let served = shard.experiment.serve(t0, w.kind, &self.key_buf, &w.value);
            if let Some(id) = req_span {
                trace.end(id);
            }
            match served? {
                Served::Done { start, done } => {
                    shard.busy_until = done;
                    shard.slots.push(done);
                    shard.load.served += 1;
                    shard.load.busy_ns += done - start;
                    let wait = start - w.submitted_at;
                    shard.queue_delay.record(wait);
                    shard.slo.served += 1;
                    let lane = shard.mt.class_mut(w.class);
                    lane.slo.served += 1;
                    lane.queue_delay.record(wait);
                    lane.starve_max_ns = lane.starve_max_ns.max(wait);
                    completion.done_at = done;
                    completion.service_ns = done - start;
                    completion.outcome = ReqOutcome::Served;
                    let estimator_cap = if self.cfg.base.maint.enabled {
                        Ns::MAX
                    } else {
                        policy.deadline_ns().unwrap_or(Ns::MAX)
                    };
                    shard.observe_service(completion.service_ns.min(estimator_cap));
                    self.resolve(completion);
                }
                Served::OutOfSpace => {
                    shard.dead = true;
                    shard.load.dropped += 1;
                    self.resolve(completion);
                    // The next iteration drains the rest as drops.
                }
            }
        }
    }

    /// Decides every waiting dispatch whose service start falls at or
    /// before `horizon` (a no-op under FIFO dispatch, which decides at
    /// submission). Drivers call this as virtual time advances, so
    /// discipline decisions are made in event order — each one sees
    /// exactly the requests that had arrived by its instant.
    pub fn settle_to(&mut self, horizon: Ns) -> Result<(), PtsError> {
        for shard_idx in 0..self.shards.len() {
            self.pump(shard_idx, horizon)?;
        }
        Ok(())
    }

    /// Decides every waiting dispatch on every shard, unboundedly.
    pub fn settle(&mut self) -> Result<(), PtsError> {
        self.settle_to(Ns::MAX)
    }

    /// Forces the single next dispatch decision fleet-wide: the shard
    /// whose next service start is earliest (ties by shard index)
    /// decides at least one waiting request. Returns `false` when no
    /// shard has anything waiting. This is how the driver makes
    /// progress when every client is blocked on an undecided request —
    /// deciding only the earliest instant keeps later decisions open to
    /// arrivals those completions trigger.
    pub fn settle_one(&mut self) -> Result<bool, PtsError> {
        let next = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(idx, s)| {
                let earliest = s.waiting.iter().map(|w| w.issued_at).min()?;
                Some((idx, s.busy_until.max(earliest)))
            })
            .min_by_key(|&(idx, t0)| (t0, idx));
        let Some((shard_idx, t0)) = next else {
            return Ok(false);
        };
        self.pump(shard_idx, t0)?;
        Ok(true)
    }

    /// Collects a completion record without touching the front-end
    /// clock (the completion was computed at submission). `None` if the
    /// token is unknown or already collected.
    ///
    /// This is how a driver implements a closed loop without running
    /// time ahead of other clients' arrivals: take the completion,
    /// schedule the next submission at `done_at`, and only advance the
    /// clock when that submission actually happens.
    pub fn take(&mut self, token: ReqToken) -> Option<ReqCompletion> {
        self.pending.remove(&token.0)
    }

    /// Blocks (advances the front-end clock) until `token`'s request
    /// completes and returns its record. Under a reordering discipline
    /// the token may still sit undecided in a waiting room; waiting on
    /// it settles every outstanding dispatch decision first.
    ///
    /// # Panics
    /// Panics if the token was never issued or was already collected,
    /// or if settling hits a hard engine failure.
    pub fn wait(&mut self, token: ReqToken) -> ReqCompletion {
        if !self.pending.contains_key(&token.0) {
            self.settle()
                .expect("engine failure while settling the dispatch backlog");
        }
        let completion = self
            .pending
            .remove(&token.0)
            .expect("waiting on an unknown or already-collected ReqToken");
        self.now = self.now.max(completion.done_at);
        completion
    }

    /// Collects one already-completed request (earliest in the
    /// completion order — `done_at`, then resolution order) without
    /// advancing the clock. Rejected and shed completions surface
    /// through the same order as served ones, not after them. Purely a
    /// view over resolved completions: requests still undecided in a
    /// reordering discipline's waiting room do not surface until a
    /// settle ([`Frontend::settle_to`] or any blocking collector).
    pub fn poll(&mut self) -> Option<ReqCompletion> {
        let key = self
            .pending
            .iter()
            .filter(|(_, c)| c.done_at <= self.now)
            .min_by_key(|(_, c)| completion_order(c))
            .map(|(t, _)| *t)?;
        self.pending.remove(&key)
    }

    /// Advances the clock to the earliest outstanding completion — of
    /// *any* outcome; a rejection turned around at `REJECT_LATENCY` can
    /// precede a served request submitted before it — and returns it
    /// (`None` if nothing is pending). Settles every outstanding
    /// dispatch decision first (panicking on hard engine failures).
    pub fn wait_any(&mut self) -> Option<ReqCompletion> {
        self.settle()
            .expect("engine failure while settling the dispatch backlog");
        let key = self
            .pending
            .iter()
            .min_by_key(|(_, c)| completion_order(c))
            .map(|(t, _)| *t)?;
        let completion = self.pending.remove(&key).expect("key just found");
        self.now = self.now.max(completion.done_at);
        Some(completion)
    }

    /// Drains every pending completion, advancing the clock to the
    /// latest; returns them in completion order (`done_at`, then
    /// resolution order), interleaving served, rejected and shed
    /// records by when each actually resolved. Settles every
    /// outstanding dispatch decision first (panicking on hard engine
    /// failures).
    pub fn wait_all(&mut self) -> Vec<ReqCompletion> {
        self.settle()
            .expect("engine failure while settling the dispatch backlog");
        let mut all: Vec<ReqCompletion> = std::mem::take(&mut self.pending).into_values().collect();
        all.sort_by_key(completion_order);
        if let Some(last) = all.last() {
            self.now = self.now.max(last.done_at);
        }
        all
    }

    /// Finishes every shard experiment (emitting trailing samples and
    /// draining engine-level asynchronous I/O) and returns the
    /// per-shard results in shard order. Settles any waiting dispatch
    /// decisions first (panicking on hard engine failures — drivers
    /// that must propagate them call [`Frontend::settle`] themselves
    /// beforehand). Uncollected completions are discarded — their work
    /// was executed and is accounted in the shard results either way.
    pub fn finish(mut self) -> Vec<FrontendShardResult> {
        self.settle()
            .expect("engine failure while settling the dispatch backlog");
        self.shards
            .into_iter()
            .map(|shard| FrontendShardResult {
                result: shard.experiment.finish(),
                load: shard.load,
                queue_delay: shard.queue_delay,
                slo: shard.slo,
                mt: shard.mt,
            })
            .collect()
    }
}

/// Fixed-point scale of the WFQ virtual clock, so integer division by
/// a class weight keeps enough resolution to order sub-microsecond
/// service estimates.
const WFQ_SCALE: u128 = 1 << 10;

/// The waiting-room index the discipline serves next at instant `t0`,
/// among requests already present (`issued_at <= t0` — guaranteed
/// non-empty, since `t0` is never earlier than the earliest waiting
/// request). Ties always fall back to token (submission) order, so
/// dispatch is deterministic.
fn select_next(shard: &ShardState, t0: Ns, discipline: DispatchDiscipline) -> usize {
    let candidates = || {
        shard
            .waiting
            .iter()
            .enumerate()
            .filter(move |(_, w)| w.issued_at <= t0)
    };
    match discipline {
        DispatchDiscipline::Fifo => unreachable!("FIFO dispatch decides eagerly at submission"),
        DispatchDiscipline::StrictPriority { promote_after_ns } => {
            // Highest class first — unless the oldest candidate has
            // aged past the promotion bound, in which case it jumps the
            // class order. This is the starvation bound the property
            // suite pins: no request waits beyond `promote_after_ns`
            // plus the residual service ahead of it.
            let (oldest_idx, oldest) = candidates()
                .min_by_key(|(_, w)| (w.issued_at, w.token))
                .expect("select_next requires a candidate");
            if t0 - oldest.issued_at > promote_after_ns {
                oldest_idx
            } else {
                candidates()
                    .min_by_key(|(_, w)| (w.class.priority(), w.issued_at, w.token))
                    .expect("select_next requires a candidate")
                    .0
            }
        }
        DispatchDiscipline::WeightedFair { .. } => {
            candidates()
                .min_by_key(|(_, w)| (w.finish_tag, w.token))
                .expect("select_next requires a candidate")
                .0
        }
    }
}

/// Pops freed slots (on the caller's scratch copy) until the queue is
/// below `depth`, returning the virtual time at which the next request
/// is admitted: `now` when a slot is free, otherwise the completion
/// time of the outstanding request(s) that must drain first. Shared by
/// actual admission and by [`SloPolicy::PredictedSojourn`]'s
/// prediction, which is what makes the prediction exact.
fn admission_time(slots: &mut Vec<Ns>, depth: usize, now: Ns) -> Ns {
    let mut issue = now;
    while slots.len() >= depth {
        let (idx, &earliest) = slots
            .iter()
            .enumerate()
            .min_by_key(|(_, &done)| done)
            .expect("non-empty at depth");
        issue = issue.max(earliest);
        slots.swap_remove(idx);
    }
    issue
}

/// The total order completions are surfaced in by [`Frontend::poll`],
/// [`Frontend::wait_any`] and [`Frontend::wait_all`]: completion time
/// first, *resolution* order ([`ReqCompletion::seq`]) on ties — across
/// all outcomes. Rejections resolve after [`REJECT_LATENCY`], so a
/// request rejected at `t` must surface *before* an earlier-submitted
/// request still queueing at `t + REJECT_LATENCY` (pinned by
/// `collectors_interleave_diverging_outcomes_in_timestamp_order`). The
/// tiebreak is deliberately NOT the token: under a reordering
/// [`DispatchDiscipline`] two requests can complete at the same
/// instant with the later-submitted one decided first, and token order
/// would silently re-impose FIFO exactly where the discipline broke it
/// (pinned by `collectors_surface_reordered_completions_in_decision_order`).
/// Under FIFO, decisions happen in submission order, so `seq` order and
/// token order coincide.
fn completion_order(c: &ReqCompletion) -> (Ns, u64) {
    (c.done_at, c.seq)
}

/// Per-client driver state for [`run_frontend`].
struct ClientState {
    generator: OpGenerator,
    arrivals: ArrivalClock,
    /// The client's own arrival process (its tenant's override when the
    /// tenant declares one, the run's shared spec otherwise).
    spec: ArrivalSpec,
    class: ReqClass,
    tenant: TenantId,
    /// The closed-loop request in flight whose completion has not been
    /// collected yet. Resolved immediately under FIFO dispatch; under a
    /// reordering discipline it stays `Some` until the dispatcher
    /// decides the request.
    inflight: Option<ReqToken>,
}

/// Runs a full serving experiment and returns the merged report.
///
/// Spawns `cfg.clients` *logical* clients, each generating requests
/// from its seeded workload stream and submitting them through a
/// [`Frontend`] at the times its seeded
/// [`ArrivalClock`](ptsbench_workload::ArrivalClock) dictates
/// (submissions stop at `cfg.base.duration`; admitted requests drain).
/// Requests routed to an out-of-space shard are dropped (counted in
/// the shard's [`ShardLoad`], completing after [`DROP_LATENCY`]); a
/// closed-loop client retires once its traffic can never be served
/// again — its bound shard died, or every shard did — while a routed
/// client with healthy shards left keeps submitting.
///
/// Deterministic in virtual time: fixed seeds produce byte-identical
/// rendered reports. In the conformant shape
/// ([`FrontendRun::conformant`]) the report is byte-identical to
/// [`crate::run_sharded`]'s — the latency-conformance suite pins this
/// for every registered engine.
pub fn run_frontend(cfg: &FrontendRun) -> Result<RunReport, PtsError> {
    Ok(run_frontend_with_results(cfg)?.report)
}

/// [`run_frontend`], also returning the per-shard [`RunResult`]s.
pub fn run_frontend_with_results(cfg: &FrontendRun) -> Result<HarnessOutcome, PtsError> {
    let mut frontend = Frontend::new(cfg)?;
    let mut clients: Vec<ClientState> = (0..cfg.clients)
        .map(|c| ClientState {
            generator: OpGenerator::new(cfg.client_workload(c)),
            arrivals: ArrivalClock::new(cfg.client_arrival(c), cfg.client_arrival_seed(c)),
            spec: cfg.client_arrival(c),
            class: cfg.client_class(c),
            tenant: cfg.tenant_of_client(c),
            inflight: None,
        })
        .collect();

    // Event loop, three moves per iteration:
    //
    // 1. collect resolved completions for blocked closed-loop clients
    //    (so they can schedule their next arrival),
    // 2. submit the earliest pending arrival (ties by client index),
    //    settling dispatch decisions strictly before it so the
    //    discipline decides in event order,
    // 3. when neither is possible, force the dispatcher's single next
    //    decision to unblock somebody.
    //
    // Under FIFO dispatch every submission resolves at submit, step 3
    // never fires, and the loop degenerates to the pre-multi-tenant
    // submit/collect cycle in the identical order.
    loop {
        // 1. Blocked clients whose requests have resolved.
        let mut resolved_any = false;
        for client in clients.iter_mut() {
            let Some(token) = client.inflight else {
                continue;
            };
            let Some(completion) = frontend.take(token) else {
                continue;
            };
            client.inflight = None;
            resolved_any = true;
            // A closed-loop client retires when its traffic can never
            // be served again: a bound client's shard died (mirroring
            // how a sharded-harness shard stops), or the whole fleet is
            // dead. A *routed* client with healthy shards left keeps
            // going — its next keys may well route elsewhere, and its
            // drops complete after `DROP_LATENCY` so retries advance
            // virtual time.
            if completion.outcome == ReqOutcome::ShardOutOfSpace
                && (cfg.binding == ClientBinding::Bound || frontend.all_shards_dead())
            {
                client.arrivals.retire();
            } else {
                client.arrivals.note_completed(completion.done_at);
            }
        }

        // 2. The earliest pending arrival within the submission window.
        if let Some((client_idx, at)) = clients
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.arrivals.next_submit().map(|t| (i, t)))
            .min_by_key(|&(i, t)| (t, i))
        {
            if at < cfg.base.duration {
                frontend.advance_to(at);
                // Settle strictly *before* the arrival instant: a
                // decision at exactly `at` must still see this (and any
                // simultaneous) submission as a candidate.
                frontend.settle_to(at.saturating_sub(1))?;
                let client = &mut clients[client_idx];
                let request = {
                    let op = client.generator.next_op();
                    Request {
                        kind: op.kind,
                        key_index: op.key_index,
                        value: op.value.to_vec(),
                        class: client.class,
                        tenant: client.tenant,
                    }
                };
                client.arrivals.note_submitted();
                let token = frontend.submit(request)?;
                if client.spec.is_closed() {
                    // Step 1 collects the completion once it resolves
                    // (immediately under FIFO, at the dispatch decision
                    // otherwise). Open-loop completions are never
                    // collected — `note_completed` is a no-op for them
                    // — and are discarded at finish.
                    client.inflight = Some(token);
                }
                continue;
            }
        }

        // 3. Nothing submitted: if a completion just resolved, loop so
        //    its client can schedule; otherwise the dispatcher itself
        //    must decide its next waiting request — and when even it
        //    has nothing left, the run is over.
        if resolved_any {
            continue;
        }
        if !frontend.settle_one()? {
            break;
        }
    }
    frontend.settle()?;

    let attach_serving_metrics = !cfg.is_conformant();
    let attach_slo = cfg.slo.is_active();
    let attach_mt = cfg.mt_active();
    let shards = frontend.finish();
    let reports = shards
        .iter()
        .enumerate()
        .map(|(index, shard)| {
            let mut report = base_shard_report(cfg.base.queue_depth, index, &shard.result);
            if attach_serving_metrics {
                report.queue_delay = Some(shard.queue_delay.clone());
                report.load = Some(shard.load);
            }
            if attach_slo {
                report.slo = Some(shard.slo);
            }
            if attach_mt {
                report.mt = Some(shard.mt.clone());
            }
            report
        })
        .collect();
    let report = RunReport::merge(cfg.label(), cfg.clients, reports);
    Ok(HarnessOutcome {
        report,
        shard_results: shards.into_iter().map(|s| s.result).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbench_core::frontend::{ClientBinding, TenantQuota, TenantSpec};
    use ptsbench_core::registry::EngineKind;
    use ptsbench_core::runner::RunConfig;
    use ptsbench_ssd::MINUTE;
    use ptsbench_workload::{ArrivalSpec, KeyDistribution};

    fn base(total_bytes: u64) -> RunConfig {
        RunConfig {
            engine: EngineKind::lsm(),
            device_bytes: total_bytes,
            duration: 10 * MINUTE,
            sample_window: 5 * MINUTE,
            ..RunConfig::default()
        }
    }

    #[test]
    fn submit_take_round_trips_and_timestamps_are_ordered() {
        let cfg = FrontendRun::new(base(16 << 20), 1);
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let token = fe
            .submit(Request {
                kind: OpKind::Update,
                key_index: 0,
                value: vec![7; 64],
                ..Default::default()
            })
            .expect("submit");
        assert_eq!(fe.pending(), 1);
        let c = fe.take(token).expect("completion");
        assert_eq!(c.outcome, ReqOutcome::Served);
        assert!(c.submitted_at <= c.issued_at && c.issued_at <= c.done_at);
        assert_eq!(c.queue_delay() + c.service_ns, c.sojourn());
        assert!(c.service_ns > 0, "an update does device + CPU work");
        assert!(fe.take(token).is_none(), "collected exactly once");
    }

    #[test]
    fn depth_one_serializes_and_wait_advances_the_clock() {
        let mut cfg = FrontendRun::new(base(16 << 20), 1);
        cfg.queue_depth = 1;
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let t0 = fe
            .submit(Request {
                kind: OpKind::Update,
                key_index: 1,
                value: vec![1; 64],
                ..Default::default()
            })
            .expect("submit");
        let t1 = fe
            .submit(Request {
                kind: OpKind::Update,
                key_index: 2,
                value: vec![2; 64],
                ..Default::default()
            })
            .expect("submit");
        let c0 = fe.wait(t0);
        assert_eq!(fe.now(), c0.done_at, "wait advances the front-end clock");
        let c1 = fe.wait(t1);
        assert_eq!(
            c1.issued_at, c0.done_at,
            "depth 1 admits the next request only when the previous completes"
        );
        assert!(c1.queue_delay() >= c0.service_ns);
    }

    #[test]
    fn poll_only_returns_requests_done_by_now() {
        let cfg = FrontendRun::new(base(16 << 20), 1);
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let token = fe
            .submit(Request {
                kind: OpKind::Read,
                key_index: 3,
                value: Vec::new(),
                ..Default::default()
            })
            .expect("submit");
        assert!(fe.poll().is_none(), "not complete at time 0");
        let done_at = fe.pending.get(&token.0).expect("pending").done_at;
        fe.advance_to(done_at);
        assert_eq!(fe.poll().expect("complete now").token, token);
    }

    #[test]
    fn hashed_and_contiguous_routing_agree_with_ownership() {
        for sharding in [Sharding::Contiguous, Sharding::Hashed] {
            let mut cfg = FrontendRun::new(base(64 << 20), 4);
            cfg.sharding = sharding;
            cfg.validate();
            let fe = Frontend::new(&cfg).expect("frontend");
            let keys = cfg.base.workload().num_keys;
            for key in (0..keys).step_by(97) {
                let owner = fe.route(key);
                let spec = cfg.shard_workload(owner);
                assert!(spec.owns_key(key), "{sharding:?}: shard {owner} ∌ {key}");
            }
        }
    }

    #[test]
    fn conformant_run_matches_run_sharded_byte_for_byte() {
        let sharded =
            crate::run_sharded(&ptsbench_core::sharded::ShardedRun::new(base(32 << 20), 2))
                .expect("sharded");
        let served = run_frontend(&FrontendRun::conformant(base(32 << 20), 2)).expect("frontend");
        assert_eq!(sharded.render(), served.render());
    }

    #[test]
    fn fan_in_over_a_hot_shard_builds_queue_delay() {
        // 8 clients, 2 shards, Zipfian keys over contiguous slices: the
        // hot prefix shard queues; queue delay must be visible and
        // separable, and the report must carry the serving metrics.
        let mut cfg = FrontendRun::new(base(32 << 20), 8);
        cfg.shards = 2;
        cfg.base.distribution = KeyDistribution::Zipfian { theta: 0.99 };
        cfg.base.read_fraction = 0.5;
        let report = run_frontend(&cfg).expect("run");
        let qd = report.queue_delay.as_ref().expect("serving metrics");
        assert!(qd.count() > 0);
        assert!(
            report.queue_delay_quantile(0.99).expect("p99") > 0,
            "8 closed-loop clients on a hot shard must queue"
        );
        let imbalance = report.load_imbalance().expect("load metrics");
        assert!(imbalance.request_ratio() > 1.0, "Zipfian skews the load");
        let text = report.render();
        assert!(text.contains("queue delay ns:"));
        assert!(text.contains("shard load:"));
    }

    #[test]
    fn open_loop_overload_queues_without_backoff() {
        // One shard, an open-loop client arriving much faster than the
        // engine can serve: queue delay must grow far beyond service
        // time (the open-vs-closed distinction in one assertion).
        let mut cfg = FrontendRun::new(base(16 << 20), 1);
        cfg.arrival = ArrivalSpec::Open {
            interarrival_ns: MINUTE / 600, // 100 ms virtual: faster than service
        };
        cfg.queue_depth = 4;
        let report = run_frontend(&cfg).expect("run");
        let p50_delay = report.queue_delay_quantile(0.5).expect("p50");
        let p50_service = report.latency.quantile(0.5);
        assert!(
            p50_delay > 4 * p50_service,
            "open-loop overload must queue: delay {p50_delay} vs service {p50_service}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = || {
            let mut c = FrontendRun::new(base(32 << 20), 4);
            c.shards = 2;
            c.sharding = Sharding::Hashed;
            c.base.distribution = KeyDistribution::Zipfian { theta: 0.9 };
            c.arrival = ArrivalSpec::OpenPoisson {
                mean_interarrival_ns: 200 * MINUTE / 1000,
            };
            c
        };
        let a = run_frontend(&cfg()).expect("run a").render();
        let b = run_frontend(&cfg()).expect("run b").render();
        assert_eq!(a, b, "fixed seeds must reproduce the report exactly");
    }

    #[test]
    fn out_of_space_shards_drop_requests_and_retire_closed_clients() {
        let mut cfg = FrontendRun::new(base(16 << 20), 2);
        cfg.shards = 1;
        cfg.base.dataset_fraction = 0.95; // cannot fit an LSM's space amp
        let outcome = run_frontend_with_results(&cfg).expect("run");
        assert_eq!(outcome.report.out_of_space_shards(), 1);
        let load = outcome.report.shards[0].load.expect("load metrics");
        assert!(load.dropped > 0, "the request hitting ENOSPC is a drop");
        assert!(
            load.dropped <= 2,
            "each closed-loop client retires at its first drop, got {}",
            load.dropped
        );
        assert_eq!(load.requests, load.served + load.dropped);
        assert_eq!(outcome.report.ops, load.served, "report counts served ops");
    }

    #[test]
    fn routed_clients_outlive_a_dead_shard() {
        // Near-full shards + Zipfian updates: the hot contiguous shard
        // dies mid-run, the cold one survives. Routed closed-loop
        // clients must keep driving the survivor instead of retiring on
        // their first drop (they retire only when every shard is dead).
        let mut cfg = FrontendRun::new(base(32 << 20), 4);
        cfg.shards = 2;
        cfg.base.dataset_fraction = 0.95;
        cfg.base.distribution = KeyDistribution::Zipfian { theta: 0.99 };
        let outcome = run_frontend_with_results(&cfg).expect("run");
        let report = &outcome.report;
        assert!(report.out_of_space_shards() >= 1, "{}", report.render());
        // The hot shard dies first and keeps *receiving*: its drop
        // count far exceeds one-per-client, proving clients were not
        // retired while other shards still served (the old behavior
        // capped drops at `clients`).
        let hot = report.shards[0].load.expect("load");
        assert!(
            hot.dropped > 10 * cfg.clients as u64,
            "clients must keep retrying past one drop each: {}",
            report.render()
        );
        // And the cold shard kept serving after the hot one died —
        // far more ops than the hot shard's own lifetime would allow
        // if everyone had retired with it.
        let cold = report.shards[1].load.expect("load");
        assert!(
            cold.served > 50,
            "the cold shard must keep serving: {}",
            report.render()
        );
    }

    #[test]
    fn dead_shards_reject_with_turnaround_while_healthy_shards_serve() {
        let cfg = FrontendRun::new(base(32 << 20), 2);
        let mut fe = Frontend::new(&cfg).expect("frontend");
        fe.shards[0].dead = true; // simulate an out-of-space shard
        let shard1_key = cfg.shard_workload(1).key_base;

        let t0 = fe
            .submit(Request {
                kind: OpKind::Read,
                key_index: 0, // shard 0's slice
                value: Vec::new(),
                ..Default::default()
            })
            .expect("submit");
        let dropped = fe.take(t0).expect("completion");
        assert_eq!(dropped.outcome, ReqOutcome::ShardOutOfSpace);
        assert_eq!(
            dropped.done_at,
            dropped.submitted_at + DROP_LATENCY,
            "drops complete after the rejection turnaround, not instantly"
        );
        assert!(!fe.all_shards_dead());

        let t1 = fe
            .submit(Request {
                kind: OpKind::Update,
                key_index: shard1_key,
                value: vec![9; 64],
                ..Default::default()
            })
            .expect("submit");
        let served = fe.take(t1).expect("completion");
        assert_eq!(served.outcome, ReqOutcome::Served, "shard 1 still serves");
    }

    #[test]
    fn queue_bound_rejects_at_the_bound_without_device_time() {
        let mut cfg = FrontendRun::new(base(16 << 20), 1);
        cfg.slo = SloPolicy::QueueBound { max_pending: 2 }.into();
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let update = |key| Request {
            kind: OpKind::Update,
            key_index: key,
            value: vec![5; 64],
            ..Default::default()
        };
        let t0 = fe.submit(update(1)).expect("submit");
        let t1 = fe.submit(update(2)).expect("submit");
        let t2 = fe.submit(update(3)).expect("submit");
        let c0 = fe.take(t0).expect("completion");
        let c1 = fe.take(t1).expect("completion");
        let c2 = fe.take(t2).expect("completion");
        assert_eq!(c0.outcome, ReqOutcome::Served);
        assert_eq!(c1.outcome, ReqOutcome::Served);
        assert_eq!(c2.outcome, ReqOutcome::Rejected, "third finds 2 pending");
        assert_eq!(c2.service_ns, 0, "rejections never touch the device");
        assert_eq!(c2.issued_at, c2.submitted_at, "rejections are never queued");
        assert_eq!(c2.done_at, c2.submitted_at + REJECT_LATENCY);

        // Once the pending requests complete, admission resumes.
        fe.advance_to(c1.done_at);
        let t3 = fe.submit(update(4)).expect("submit");
        let c3 = fe.take(t3).expect("completion");
        assert_eq!(c3.outcome, ReqOutcome::Served);

        let shard = fe.finish().pop().expect("one shard");
        assert_eq!(shard.slo.offered, 4);
        assert_eq!(shard.slo.admitted, 3);
        assert_eq!(shard.slo.rejected, 1);
        assert_eq!(shard.slo.shed, 0);
        assert_eq!(shard.slo.served, 3);
        assert_eq!(
            shard.slo.attainment(),
            0.75,
            "3 of 4 offered requests were served within the SLO"
        );
        assert_eq!(
            shard.load.busy_ns,
            c0.service_ns + c1.service_ns + c3.service_ns,
            "engine busy time is exactly the served requests' service time \
             (the rejected request contributed none)"
        );
    }

    #[test]
    fn predicted_sojourn_rejects_what_would_miss_the_deadline() {
        use ptsbench_ssd::SECOND;
        let mut cfg = FrontendRun::new(base(16 << 20), 1);
        cfg.slo = SloPolicy::PredictedSojourn {
            deadline_ns: 2 * SECOND,
        }
        .into();
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let mut served = 0u64;
        let mut rejected = 0u64;
        for key in 0..30 {
            let token = fe
                .submit(Request {
                    kind: OpKind::Update,
                    key_index: key,
                    value: vec![9; 64],
                    ..Default::default()
                })
                .expect("submit");
            let c = fe.take(token).expect("completion");
            match c.outcome {
                ReqOutcome::Served => {
                    served += 1;
                    assert!(
                        c.queue_delay() <= 2 * SECOND,
                        "the admission prediction is exact, so no admitted \
                         request may start past the deadline: {c:?}"
                    );
                }
                ReqOutcome::Rejected => {
                    rejected += 1;
                    assert_eq!(c.service_ns, 0);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(served >= 2, "the first requests fit the deadline");
        assert!(
            rejected > 0,
            "30 simultaneous sub-second ops cannot all start within 2 s"
        );
    }

    #[test]
    fn maintenance_mode_estimator_runs_unclamped_without_wedging() {
        use ptsbench_ssd::SECOND;
        // PR 5 clamped EWMA observations at the deadline because one
        // inline compaction could wedge PredictedSojourn permanently:
        // rejections never update the estimate, so an estimate past
        // the deadline could never fall again. With background
        // maintenance the clamp is off — raw observations may exceed
        // the deadline under genuine backpressure (and reject honest
        // overload), but decay-on-reject must always bring an idle
        // shard back to serving within a bounded number of probes.
        let mut cfg = FrontendRun::new(base(16 << 20), 1);
        cfg.base.maint = ptsbench_core::MaintConfig::enabled();
        cfg.slo = SloPolicy::PredictedSojourn {
            deadline_ns: 2 * SECOND,
        }
        .into();
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let mut served = 0u64;
        let total = 400u64;
        for i in 0..total {
            let token = fe
                .submit(Request {
                    kind: OpKind::Update,
                    key_index: i % 64,
                    value: vec![0xAB; 2048],
                    ..Default::default()
                })
                .expect("submit");
            if fe.wait(token).outcome == ReqOutcome::Served {
                served += 1;
            }
        }
        assert!(
            served > total / 2,
            "the storm must be mostly served, not a shard death spiral: \
             {served}/{total}"
        );
        // The wedge failure mode: storm over, shard idle, estimator
        // stuck past the deadline, *nothing ever served again*. With
        // decay-on-reject each probe shrinks the estimate by 1/8, so
        // recovery must land within a few dozen turnarounds.
        fe.advance_to(fe.now() + 10 * SECOND);
        let mut probes = 0u32;
        let recovered = loop {
            let probe = fe
                .submit(Request {
                    kind: OpKind::Update,
                    key_index: 1,
                    value: vec![1; 64],
                    ..Default::default()
                })
                .expect("submit");
            let c = fe.wait(probe);
            probes += 1;
            match c.outcome {
                ReqOutcome::Served => break true,
                ReqOutcome::Rejected if probes < 100 => continue,
                _ => break false,
            }
        };
        assert!(
            recovered,
            "the unclamped estimator must recover on an idle shard \
             within 100 probes"
        );
        let shard = fe.finish().pop().expect("one shard");
        let maint = shard.result.maint.expect("maintenance stats");
        assert!(
            maint.jobs > 0,
            "the storm must actually exercise background jobs"
        );
        assert!(
            shard.slo.served > 0 && shard.slo.served == served + 1,
            "accounting covers the storm and the recovery probe"
        );
    }

    #[test]
    fn deadline_policy_sheds_stale_requests_at_dispatch() {
        use ptsbench_ssd::SECOND;
        let mut cfg = FrontendRun::new(base(16 << 20), 1);
        cfg.slo = SloPolicy::Deadline { budget_ns: SECOND }.into();
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let mut outcomes = Vec::new();
        for key in 0..10 {
            let token = fe
                .submit(Request {
                    kind: OpKind::Update,
                    key_index: key,
                    value: vec![3; 64],
                    ..Default::default()
                })
                .expect("submit");
            outcomes.push(fe.take(token).expect("completion"));
        }
        let shed: Vec<_> = outcomes
            .iter()
            .filter(|c| c.outcome == ReqOutcome::Shed)
            .collect();
        let served = outcomes
            .iter()
            .filter(|c| c.outcome == ReqOutcome::Served)
            .count();
        assert!(served >= 1, "the first request is never past its budget");
        assert!(!shed.is_empty(), "later requests age out while queued");
        for c in &shed {
            assert_eq!(c.service_ns, 0, "shed requests never touch the device");
            assert!(
                c.done_at - c.submitted_at > SECOND,
                "a request is shed only once it is already past its budget: {c:?}"
            );
            assert!(c.issued_at <= c.done_at);
        }
        // The budget is an age cut, not a death sentence for the shard:
        // an idle-system submission is served again.
        fe.advance_to(20 * SECOND);
        let token = fe
            .submit(Request {
                kind: OpKind::Update,
                key_index: 11,
                value: vec![4; 64],
                ..Default::default()
            })
            .expect("submit");
        assert_eq!(
            fe.take(token).expect("completion").outcome,
            ReqOutcome::Served
        );

        let shard = fe.finish().pop().expect("one shard");
        assert_eq!(shard.slo.offered, 11);
        assert_eq!(shard.slo.rejected, 0, "Deadline never rejects at submit");
        assert_eq!(shard.slo.admitted, 11);
        assert_eq!(shard.slo.shed, shed.len() as u64);
        assert_eq!(shard.slo.served, served as u64 + 1);
    }

    #[test]
    fn collectors_interleave_diverging_outcomes_in_timestamp_order() {
        let mut cfg = FrontendRun::new(base(16 << 20), 1);
        cfg.slo = SloPolicy::QueueBound { max_pending: 1 }.into();
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let update = |key| Request {
            kind: OpKind::Update,
            key_index: key,
            value: vec![7; 64],
            ..Default::default()
        };
        // A is admitted and served (sub-second service, well past the
        // 1 ms rejection turnaround); B and C find the queue at its
        // bound and are rejected, resolving at +REJECT_LATENCY — i.e.
        // *before* the earlier-submitted A.
        let a = fe.submit(update(1)).expect("submit");
        let b = fe.submit(update(2)).expect("submit");
        let c = fe.submit(update(3)).expect("submit");

        // poll honors the clock and the cross-outcome order.
        assert!(fe.poll().is_none(), "nothing has resolved at t=0");
        fe.advance_to(REJECT_LATENCY);
        let first = fe.poll().expect("rejections resolved at 1 ms");
        assert_eq!((first.token, first.outcome), (b, ReqOutcome::Rejected));

        // wait_any surfaces the earliest completion of any outcome:
        // the remaining rejection precedes the served request even
        // though the served one was submitted first.
        let second = fe.wait_any().expect("pending");
        assert_eq!((second.token, second.outcome), (c, ReqOutcome::Rejected));
        let third = fe.wait_any().expect("pending");
        assert_eq!((third.token, third.outcome), (a, ReqOutcome::Served));
        assert!(second.done_at < third.done_at);
        assert_eq!(fe.wait_any().map(|c| c.token), None);

        // wait_all over a fresh identical scenario interleaves by
        // (done_at, token), not by submission or outcome.
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let a = fe.submit(update(1)).expect("submit");
        let b = fe.submit(update(2)).expect("submit");
        let c = fe.submit(update(3)).expect("submit");
        let all = fe.wait_all();
        assert_eq!(
            all.iter().map(|c| c.token).collect::<Vec<_>>(),
            vec![b, c, a],
            "timestamp order, rejections first"
        );
        assert!(all
            .windows(2)
            .all(|w| (w[0].done_at, w[0].token) <= (w[1].done_at, w[1].token)));
        assert_eq!(fe.now(), all.last().expect("non-empty").done_at);
    }

    #[test]
    fn slo_accounting_lands_in_reports_only_when_a_policy_is_active() {
        use ptsbench_workload::ArrivalSpec;
        let serve = |slo: SloPolicy| {
            let mut cfg = FrontendRun::new(base(32 << 20), 4);
            cfg.shards = 2;
            cfg.arrival = ArrivalSpec::OpenPoisson {
                mean_interarrival_ns: MINUTE / 100,
            };
            cfg.slo = slo.into();
            run_frontend(&cfg).expect("run")
        };
        let plain = serve(SloPolicy::None);
        assert!(plain.slo_totals().is_none());
        assert!(!plain.render().contains("slo"));

        let bounded = serve(SloPolicy::QueueBound { max_pending: 2 });
        let totals = bounded.slo_totals().expect("slo accounting");
        assert!(totals.rejected > 0, "0.6 s mean interarrival must overload");
        assert_eq!(totals.offered, totals.admitted + totals.rejected);
        assert_eq!(totals.served, totals.admitted, "nothing shed by QueueBound");
        assert!(bounded.label.ends_with("/slo-qb2"), "{}", bounded.label);
        let text = bounded.render();
        assert!(text.contains("slo: offered="));
        assert!(text.contains("slo[adm="));
        // Queue-delay samples exist only for served requests.
        let qd = bounded.queue_delay.as_ref().expect("queue delay");
        assert_eq!(qd.count(), totals.served);
    }

    #[test]
    fn collectors_surface_reordered_completions_in_decision_order() {
        // Satellite of the multi-tenant PR: the collector tiebreak used
        // to be the token, which silently encoded "completions happen
        // in submission order" — true under FIFO only. Under WFQ a
        // later-submitted interactive request is decided (and done)
        // before an earlier batch one; collectors must surface it
        // first.
        let mut cfg = FrontendRun::new(base(16 << 20), 1);
        cfg.discipline = DispatchDiscipline::WeightedFair { weights: [8, 1, 1] };
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let batch = |key| Request {
            kind: OpKind::Update,
            key_index: key,
            value: vec![7; 64],
            class: ReqClass::Batch,
            ..Default::default()
        };
        let b0 = fe.submit(batch(1)).expect("submit");
        let b1 = fe.submit(batch(2)).expect("submit");
        let i0 = fe
            .submit(Request {
                kind: OpKind::Read,
                key_index: 3,
                ..Default::default()
            })
            .expect("submit");
        let all = fe.wait_all();
        let tokens: Vec<_> = all.iter().map(|c| c.token).collect();
        assert_eq!(
            tokens,
            vec![i0, b0, b1],
            "the last-submitted interactive request is decided first \
             (weight 8 vs 1), so it must surface first"
        );
        assert!(
            all.windows(2)
                .all(|w| (w[0].done_at, w[0].seq) <= (w[1].done_at, w[1].seq)),
            "collection order is (done_at, seq)"
        );
        assert!(
            tokens != {
                let mut sorted = tokens.clone();
                sorted.sort();
                sorted
            },
            "the scenario genuinely inverts submission order"
        );
        let served: Vec<_> = all
            .iter()
            .filter(|c| c.outcome == ReqOutcome::Served)
            .collect();
        assert_eq!(served.len(), 3);
        assert!(
            served[0].done_at <= served[1].done_at,
            "completion timestamps stay monotone in collection order"
        );
    }

    #[test]
    fn wfq_dispatches_by_weighted_virtual_finish_time() {
        let mut cfg = FrontendRun::new(base(16 << 20), 1);
        cfg.discipline = DispatchDiscipline::WeightedFair { weights: [6, 2, 1] };
        let mut fe = Frontend::new(&cfg).expect("frontend");
        // Build a same-instant backlog: 4 batch, then 4 interactive.
        let mut batch_tokens = Vec::new();
        let mut int_tokens = Vec::new();
        for k in 0..4u64 {
            batch_tokens.push(
                fe.submit(Request {
                    kind: OpKind::Update,
                    key_index: k,
                    value: vec![1; 64],
                    class: ReqClass::Batch,
                    ..Default::default()
                })
                .expect("submit"),
            );
        }
        for k in 4..8u64 {
            int_tokens.push(
                fe.submit(Request {
                    kind: OpKind::Update,
                    key_index: k,
                    value: vec![2; 64],
                    ..Default::default()
                })
                .expect("submit"),
            );
        }
        let all = fe.wait_all();
        assert_eq!(all.len(), 8);
        let int_mean: u64 = all
            .iter()
            .filter(|c| c.class == ReqClass::Interactive)
            .map(|c| c.queue_delay())
            .sum::<u64>()
            / 4;
        let bat_mean: u64 = all
            .iter()
            .filter(|c| c.class == ReqClass::Batch)
            .map(|c| c.queue_delay())
            .sum::<u64>()
            / 4;
        assert!(
            int_mean < bat_mean,
            "weight 6 vs 2 must favor interactive queue delay: {int_mean} vs {bat_mean}"
        );
        // Class lanes partition the shard's SLO accounting.
        let shard = fe.finish().pop().expect("one shard");
        let lane_sums = shard.mt.classes.iter().fold((0u64, 0u64, 0u64), |acc, l| {
            (
                acc.0 + l.slo.offered,
                acc.1 + l.slo.admitted,
                acc.2 + l.slo.served,
            )
        });
        assert_eq!(
            lane_sums,
            (shard.slo.offered, shard.slo.admitted, shard.slo.served)
        );
        assert_eq!(shard.slo.served, 8);
    }

    #[test]
    fn strict_priority_serves_classes_in_order_but_promotes_aged_work() {
        let mut cfg = FrontendRun::new(base(16 << 20), 1);
        cfg.discipline = DispatchDiscipline::StrictPriority {
            promote_after_ns: 1,
        };
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let req = |key, class| Request {
            kind: OpKind::Update,
            key_index: key,
            value: vec![3; 64],
            class,
            ..Default::default()
        };
        // One background request, then three interactive, all at t=0.
        let bg = fe.submit(req(0, ReqClass::Background)).expect("submit");
        let i0 = fe.submit(req(1, ReqClass::Interactive)).expect("submit");
        let i1 = fe.submit(req(2, ReqClass::Interactive)).expect("submit");
        let i2 = fe.submit(req(3, ReqClass::Interactive)).expect("submit");
        let order: Vec<_> = fe.wait_all().iter().map(|c| c.token).collect();
        // First decision at t=0: nothing has aged, interactive wins.
        // Second decision: the background request has aged past the
        // 1 ns promotion bound and jumps the remaining interactives.
        assert_eq!(
            order,
            vec![i0, bg, i1, i2],
            "age promotion must bound background starvation"
        );
        let shard = fe.finish().pop().expect("one shard");
        let bg_lane = shard.mt.class(ReqClass::Background);
        assert!(
            bg_lane.starve_max_ns > 0,
            "the promoted request still waited one service time"
        );
        assert!(
            bg_lane.starve_max_ns <= shard.mt.class(ReqClass::Interactive).slo.span_ns,
            "sanity: starvation is bounded by the run span"
        );
    }

    #[test]
    fn tenant_token_buckets_throttle_over_quota_submissions() {
        let mut cfg = FrontendRun::new(base(32 << 20), 2);
        cfg.shards = 1;
        cfg.tenants = vec![
            TenantSpec::new(ReqClass::Interactive, 1),
            TenantSpec {
                quota: Some(TenantQuota {
                    rate_ops_per_sec: 0,
                    burst_ops: 2,
                }),
                ..TenantSpec::new(ReqClass::Batch, 1)
            },
        ];
        let mut fe = Frontend::new(&cfg).expect("frontend");
        let from_tenant = |key, tenant| Request {
            kind: OpKind::Update,
            key_index: key,
            value: vec![9; 64],
            class: if tenant == 1 {
                ReqClass::Batch
            } else {
                ReqClass::Interactive
            },
            tenant,
        };
        // Zero refill rate, burst 2: exactly two batch submissions pass,
        // every later one is throttled — forever.
        let mut outcomes = Vec::new();
        for key in 0..4 {
            let t = fe.submit(from_tenant(key, 1)).expect("submit");
            outcomes.push(fe.wait(t));
        }
        assert_eq!(outcomes[0].outcome, ReqOutcome::Served);
        assert_eq!(outcomes[1].outcome, ReqOutcome::Served);
        for c in &outcomes[2..] {
            assert_eq!(c.outcome, ReqOutcome::Throttled);
            assert_eq!(c.service_ns, 0, "throttled requests never touch the device");
            assert_eq!(
                c.issued_at, c.submitted_at,
                "throttled requests never queue"
            );
            assert_eq!(c.done_at, c.submitted_at + REJECT_LATENCY);
        }
        // The unthrottled tenant is untouched by its neighbor's quota.
        let t = fe.submit(from_tenant(5, 0)).expect("submit");
        assert_eq!(fe.wait(t).outcome, ReqOutcome::Served);

        let shard = fe.finish().pop().expect("one shard");
        assert_eq!(shard.slo.throttled, 2);
        let aggressor = &shard.mt.tenants[1];
        assert_eq!(
            (aggressor.offered, aggressor.admitted, aggressor.throttled),
            (4, 2, 2),
            "the ledger splits offered into bucket passes and throttles"
        );
        let quiet = &shard.mt.tenants[0];
        assert_eq!((quiet.offered, quiet.admitted, quiet.throttled), (1, 1, 0));
        assert_eq!(
            shard.mt.class(ReqClass::Batch).slo.throttled,
            2,
            "throttles land in the submitting class's lane too"
        );
    }

    #[test]
    fn bound_binding_requires_matching_counts() {
        let mut cfg = FrontendRun::new(base(32 << 20), 2);
        cfg.binding = ClientBinding::Bound;
        cfg.validate(); // 2 clients, 2 shards: fine
        cfg.clients = 3;
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cfg.validate()));
        assert!(err.is_err());
    }
}
