//! The multi-client driver: client threads, barrier epochs, merge.

use std::sync::Arc;

use ptsbench_core::engine::PtsError;
use ptsbench_core::measure::Experiment;
use ptsbench_core::runner::RunResult;
use ptsbench_core::sharded::ShardedRun;
use ptsbench_metrics::runreport::{QueueDepthSummary, RunReport, ShardReport};
use ptsbench_ssd::ClockBarrier;

/// Everything a sharded run produces: the merged report plus the full
/// per-shard [`RunResult`]s (in shard-index order) for callers that
/// want the single-run level of detail.
#[derive(Debug, Clone)]
pub struct HarnessOutcome {
    /// The merged run-level report.
    pub report: RunReport,
    /// Per-shard results, indexed by shard.
    pub shard_results: Vec<RunResult>,
}

/// Runs a concurrent sharded experiment and returns the merged report.
///
/// Spawns `cfg.clients` OS threads; each prepares and drives its own
/// disjoint subset of the `cfg.shards` shard experiments, advancing
/// them one `cfg.epoch` of virtual time at a time and synchronizing on
/// a [`ClockBarrier`] between epochs. Per-shard out-of-space ends that
/// shard early but the run continues; any hard engine failure stops
/// the run and is returned (the failing client leaves the barrier so
/// the others drain instead of deadlocking).
///
/// With fixed seeds the merged report is byte-identical run-to-run —
/// shard simulations share nothing, so thread scheduling cannot perturb
/// them.
pub fn run_sharded(cfg: &ShardedRun) -> Result<RunReport, PtsError> {
    Ok(run_sharded_with_results(cfg)?.report)
}

/// [`run_sharded`], also returning the per-shard [`RunResult`]s.
pub fn run_sharded_with_results(cfg: &ShardedRun) -> Result<HarnessOutcome, PtsError> {
    cfg.validate();
    let barrier = ClockBarrier::new(cfg.clients, cfg.epoch);

    let per_client: Vec<Result<Vec<(usize, RunResult)>, PtsError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || drive_client(cfg, client, &barrier))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    // Deterministic merge order: flatten in client order, then sort by
    // shard index. Errors propagate lowest-client-first.
    let mut results: Vec<(usize, RunResult)> = Vec::with_capacity(cfg.shards);
    for client_results in per_client {
        results.extend(client_results?);
    }
    results.sort_by_key(|(shard, _)| *shard);

    let reports = results
        .iter()
        .map(|(shard, r)| base_shard_report(cfg.base.queue_depth, *shard, r))
        .collect();
    let report = RunReport::merge(cfg.label(), cfg.clients, reports);
    Ok(HarnessOutcome {
        report,
        shard_results: results.into_iter().map(|(_, r)| r).collect(),
    })
}

/// Leaves the barrier when dropped, so a client that returns an error
/// — or *unwinds on a panic* — always stops the other clients from
/// waiting for it at the next boundary instead of deadlocking them.
struct LeaveOnExit<'a>(&'a ClockBarrier);

impl Drop for LeaveOnExit<'_> {
    fn drop(&mut self) {
        self.0.leave();
    }
}

/// One client thread: prepare owned shards, step them through barrier
/// epochs, finish them.
fn drive_client(
    cfg: &ShardedRun,
    client: usize,
    barrier: &ClockBarrier,
) -> Result<Vec<(usize, RunResult)>, PtsError> {
    let _leave = LeaveOnExit(barrier);
    let mut experiments: Vec<(usize, Experiment)> = Vec::new();
    for shard in cfg.shards_of_client(client) {
        let shard_cfg = cfg.shard_config(shard);
        let workload = cfg.shard_workload(shard);
        experiments.push((shard, Experiment::prepare_with(&shard_cfg, workload)?));
    }
    for epoch in 1..=cfg.epochs() {
        let rel_deadline = (epoch * cfg.epoch).min(cfg.base.duration);
        for (_, experiment) in experiments.iter_mut() {
            experiment.run_until(rel_deadline)?;
        }
        barrier.arrive();
    }
    Ok(experiments
        .into_iter()
        .map(|(shard, experiment)| (shard, experiment.finish()))
        .collect())
}

/// A shard's contribution to the merged report, shared by the sharded
/// driver and the serving front-end. The series listed here are the
/// *additive* ones (rates sum across shards). Queue-depth metrics
/// appear only for asynchronous (`queue_depth > 1`) runs, so depth-1
/// reports render byte-identically to the pre-queue harness; the
/// front-end's queue-delay/load extensions start out `None` and are
/// attached only by non-conformant front-end runs.
pub(crate) fn base_shard_report(queue_depth: usize, index: usize, r: &RunResult) -> ShardReport {
    ShardReport {
        name: format!("shard{index}"),
        ops: r.ops_executed,
        out_of_space: r.out_of_space,
        latency: r.latency.clone(),
        app_bytes: r.app_bytes_written,
        host_bytes: r.host_bytes_written,
        io_depth: (queue_depth > 1).then(|| QueueDepthSummary {
            submitted: r.io_depth.submitted,
            max_in_flight: r.io_depth.max_in_flight,
            mean_in_flight: r.io_depth.mean_in_flight(),
        }),
        cache: r.cache,
        cause: r.cause,
        maint: r.maint,
        queue_delay: None,
        load: None,
        slo: None,
        mt: None,
        series: vec![r.throughput_series(), r.device_write_series()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbench_core::registry::EngineKind;
    use ptsbench_core::runner::{run, RunConfig};
    use ptsbench_ssd::MINUTE;

    /// Small enough for debug-mode tests: 16 MiB per shard (the SSD1
    /// geometry floor), short measured phase.
    fn base(total_bytes: u64) -> RunConfig {
        RunConfig {
            engine: EngineKind::lsm(),
            device_bytes: total_bytes,
            duration: 10 * MINUTE,
            sample_window: 5 * MINUTE,
            ..RunConfig::default()
        }
    }

    #[test]
    fn one_client_matches_the_unsharded_runner() {
        let cfg = base(32 << 20);
        let single = run(&cfg).expect("single run");
        let sharded = ShardedRun::new(cfg, 1);
        let outcome = run_sharded_with_results(&sharded).expect("sharded run");
        let shard = &outcome.shard_results[0];
        assert_eq!(shard.ops_executed, single.ops_executed);
        assert_eq!(shard.samples, single.samples);
        assert_eq!(outcome.report.ops, single.ops_executed);
        assert_eq!(
            outcome.report.latency.count(),
            single.latency.count(),
            "merged latency must equal the single run's"
        );
    }

    #[test]
    fn two_clients_double_aggregate_virtual_throughput() {
        let one = run_sharded(&ShardedRun::new(base(32 << 20), 1)).expect("1 client");
        let two = run_sharded(&ShardedRun::new(base(64 << 20), 2)).expect("2 clients");
        assert!(one.ops > 0);
        assert!(
            two.ops as f64 > 1.5 * one.ops as f64,
            "2 clients must scale aggregate ops: {} vs {}",
            two.ops,
            one.ops
        );
        // Merged series sum per-shard rates on aligned windows.
        let kops = two.series_named("kv_kops").expect("kops series");
        assert_eq!(kops.len(), 2, "10 min / 5 min windows");
    }

    #[test]
    fn reports_are_byte_identical_across_runs() {
        let cfg = || {
            let mut s = ShardedRun::new(base(64 << 20), 2);
            s.shards = 4;
            s
        };
        let a = run_sharded(&cfg()).expect("run a").render();
        let b = run_sharded(&cfg()).expect("run b").render();
        assert_eq!(a, b, "fixed seeds must reproduce the report exactly");
        assert!(a.contains("shards=4"));
    }

    #[test]
    fn shards_outnumbering_clients_are_interleaved() {
        let mut sharded = ShardedRun::new(base(64 << 20), 2);
        sharded.shards = 4;
        let outcome = run_sharded_with_results(&sharded).expect("run");
        assert_eq!(outcome.shard_results.len(), 4);
        assert_eq!(outcome.report.shards.len(), 4);
        for (i, shard) in outcome.report.shards.iter().enumerate() {
            assert_eq!(shard.name, format!("shard{i}"), "merge order by index");
            assert!(shard.ops > 0, "shard {i} must execute ops");
        }
    }

    #[test]
    fn hash_sharded_runs_work_and_are_deterministic() {
        use ptsbench_core::sharded::Sharding;
        let cfg = || {
            let mut s = ShardedRun::new(base(32 << 20), 2);
            s.sharding = Sharding::Hashed;
            s
        };
        let a = run_sharded(&cfg()).expect("hashed run a");
        assert!(a.ops > 0);
        for shard in &a.shards {
            assert!(shard.ops > 0, "every hash shard must execute ops");
        }
        let b = run_sharded(&cfg()).expect("hashed run b");
        assert_eq!(a.render(), b.render(), "hashed routing stays deterministic");
    }

    #[test]
    fn queue_depth_surfaces_in_the_report_only_above_one() {
        // QD=1: the report must render byte-identically to an untouched
        // default config (the pre-queue renderer).
        let mut explicit = base(32 << 20);
        explicit.queue_depth = 1;
        let default_render = run_sharded(&ShardedRun::new(base(32 << 20), 1))
            .expect("default run")
            .render();
        let explicit_render = run_sharded(&ShardedRun::new(explicit, 1))
            .expect("qd1 run")
            .render();
        assert_eq!(default_render, explicit_render);
        assert!(!default_render.contains("qd["));

        // QD=8 on a read-mixed workload: depth metrics appear.
        let mut deep = base(32 << 20);
        deep.queue_depth = 8;
        deep.read_fraction = 0.5;
        let report = run_sharded(&ShardedRun::new(deep, 1)).expect("qd8 run");
        assert!(report.label.contains("/qd8"));
        let text = report.render();
        assert!(
            text.contains("qd[submitted="),
            "deep runs must report in-flight depth: {text}"
        );
    }

    #[test]
    fn client_panic_propagates_instead_of_deadlocking() {
        use ptsbench_core::engine::PtsEngine;
        use ptsbench_core::registry::{EngineDescriptor, EngineRegistry, EngineTuning, Lifecycle};
        use ptsbench_vfs::Vfs;

        fn build_panicking(
            _vfs: Vfs,
            _tuning: &EngineTuning,
            _lifecycle: Lifecycle,
        ) -> Result<Box<dyn PtsEngine>, PtsError> {
            panic!("engine construction panic (test)")
        }
        let kind = EngineRegistry::register(EngineDescriptor {
            name: "Panicking (test)",
            label: "panic-test-engine",
            default_cpu_cost_ns: 1,
            build: build_panicking,
        });
        let mut cfg = base(32 << 20);
        cfg.engine = kind;
        let sharded = ShardedRun::new(cfg, 2);
        // Must not hang: the panicking client's barrier departure (drop
        // guard) releases the other client, and the panic propagates.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_sharded(&sharded)));
        assert!(outcome.is_err(), "the client panic must propagate");
    }

    #[test]
    fn out_of_space_shards_end_early_without_killing_the_run() {
        let mut cfg = base(32 << 20);
        cfg.dataset_fraction = 0.95;
        let sharded = ShardedRun::new(cfg, 2);
        let report = run_sharded(&sharded).expect("harness must survive ENOSPC shards");
        assert!(
            report.out_of_space_shards() > 0,
            "95% dataset must not fit an LSM's space amplification"
        );
    }
}
