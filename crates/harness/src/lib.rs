//! # ptsbench-harness — the concurrent sharded workload driver
//!
//! The paper measures every pitfall through a single-threaded
//! update/read phase; real tree-structure deployments serve many
//! clients at once, and flash SSDs only reveal their internal
//! parallelism under concurrent request streams (Roh et al.). This
//! crate scales the methodology out without giving up its defining
//! property — determinism on a simulated clock:
//!
//! * **Shared-nothing shards.** A `ShardedRun` (from `ptsbench-core`)
//!   splits the experiment into `M` shards: each gets an equal slice of
//!   the simulated capacity as its *own* device, its own filesystem
//!   partition, its own engine instance, and its own contiguous slice
//!   of the key space with an independently seeded op stream
//!   (`WorkloadSpec::shard`). Nothing is shared between shards, so no
//!   thread interleaving can perturb any shard's simulation — the
//!   KVell-style partitioned design the paper's §4.1 discusses.
//! * **Real threads, virtual lockstep.** `N` client threads each drive
//!   their shards' measured phases one epoch at a time and meet at a
//!   `ptsbench_ssd::ClockBarrier` between epochs: the global experiment
//!   clock only advances when every active client has simulated up to
//!   the boundary, so sampling windows line up across clients and no
//!   client runs arbitrarily ahead.
//! * **Mergeable metrics.** Every client records its own latency
//!   histogram and per-window series; [`run_sharded`] folds them into
//!   one `ptsbench_metrics::RunReport`. Fixed seeds produce
//!   byte-identical rendered reports run-to-run, regardless of thread
//!   scheduling — the CI determinism check diffs exactly this.
//! * **A serving front-end.** [`Frontend`] puts a request/response
//!   layer in front of the shard fleet — N logical clients, a
//!   dispatcher with a bounded per-shard queue, completions carrying
//!   `submitted_at`/`issued_at`/`done_at` — so queueing delay at high
//!   fan-in is measurable *separately* from device latency.
//!   [`run_frontend`] drives seeded open- or closed-loop arrival
//!   processes over it; in its conformance shape it reproduces
//!   [`run_sharded`] byte-identically (see
//!   `tests/latency_conformance.rs`).
//! * **Admission control and load shedding.** An
//!   `ptsbench_core::frontend::SloPolicy` lets the dispatcher bound
//!   per-shard pending work (`QueueBound`), reject requests whose
//!   predicted sojourn would miss a deadline (`PredictedSojourn`), or
//!   shed requests already past their budget at dispatch time
//!   (`Deadline`). Turned-away requests resolve as
//!   [`ReqOutcome::Rejected`] / [`ReqOutcome::Shed`] without consuming
//!   device time, and per-shard `SloStats` (goodput, attainment) land
//!   in the report — the `fig_slo` goodput-vs-offered-load curves.
//! * **Request-level tracing.** When a run enables the flight recorder
//!   (`RunConfig.trace`), the front-end opens a `req.put`/`req.get`
//!   root span per request with the dispatch-queue wait as a
//!   `req.queue` child, so every engine phase and device command the
//!   request causes nests under it — the `fig_anatomy` tail
//!   decomposition. Tracing never advances the virtual clock or
//!   consumes workload randomness; `tests/trace_conformance.rs` pins
//!   traced runs identical to untraced twins in every measured
//!   quantity.
//!
//! ```no_run
//! use ptsbench_core::{RunConfig, ShardedRun};
//! use ptsbench_harness::run_sharded;
//!
//! let run = ShardedRun::new(RunConfig::default(), 4);
//! let report = run_sharded(&run).expect("harness run");
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod driver;
mod frontend;

pub use driver::{run_sharded, run_sharded_with_results, HarnessOutcome};
pub use frontend::{
    run_frontend, run_frontend_with_results, Frontend, FrontendShardResult, ReqCompletion,
    ReqOutcome, ReqToken, Request, DROP_LATENCY, REJECT_LATENCY,
};
