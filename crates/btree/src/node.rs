//! Tree pages: leaves and internal routing nodes, with their binary
//! encodings.
//!
//! Leaf layout: `[1u8][u32 n]` then `n` entries of
//! `[u16 klen][u32 vlen][key][value]`, keys strictly increasing.
//!
//! Internal layout: `[2u8][u32 n_children][u64 child]*n` then
//! `(n_children - 1)` separators of `[u16 klen][key]`. Child `i` holds
//! keys `k` with `sep[i-1] <= k < sep[i]` (first child: `k < sep[0]`).

use crate::{BTreeError, PageNo, Result};

/// A decoded tree page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Key-value storage page.
    Leaf {
        /// Sorted `(key, value)` entries.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// Routing page.
    Internal {
        /// Child page numbers (`separators.len() + 1` of them).
        children: Vec<PageNo>,
        /// Separator keys between children.
        separators: Vec<Vec<u8>>,
    },
}

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

impl Node {
    /// An empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf {
            entries: Vec::new(),
        }
    }

    /// Whether this is a leaf page.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Node::Leaf { entries } => {
                5 + entries
                    .iter()
                    .map(|(k, v)| 6 + k.len() + v.len())
                    .sum::<usize>()
            }
            Node::Internal {
                children,
                separators,
            } => 5 + children.len() * 8 + separators.iter().map(|k| 2 + k.len()).sum::<usize>(),
        }
    }

    /// Encodes into `buf` (cleared first).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.clear();
        match self {
            Node::Leaf { entries } => {
                buf.push(TAG_LEAF);
                buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (k, v) in entries {
                    buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    buf.extend_from_slice(k);
                    buf.extend_from_slice(v);
                }
            }
            Node::Internal {
                children,
                separators,
            } => {
                debug_assert_eq!(children.len(), separators.len() + 1);
                buf.push(TAG_INTERNAL);
                buf.extend_from_slice(&(children.len() as u32).to_le_bytes());
                for c in children {
                    buf.extend_from_slice(&c.to_le_bytes());
                }
                for k in separators {
                    buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    buf.extend_from_slice(k);
                }
            }
        }
    }

    /// Decodes a page image.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let corrupt = |m: &str| BTreeError::Corruption(m.to_string());
        if buf.len() < 5 {
            return Err(corrupt("page too small"));
        }
        let tag = buf[0];
        let n = u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes")) as usize;
        let mut pos = 5;
        match tag {
            TAG_LEAF => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    if pos + 6 > buf.len() {
                        return Err(corrupt("truncated leaf entry"));
                    }
                    let klen =
                        u16::from_le_bytes(buf[pos..pos + 2].try_into().expect("2")) as usize;
                    let vlen =
                        u32::from_le_bytes(buf[pos + 2..pos + 6].try_into().expect("4")) as usize;
                    pos += 6;
                    if pos + klen + vlen > buf.len() {
                        return Err(corrupt("truncated leaf payload"));
                    }
                    let key = buf[pos..pos + klen].to_vec();
                    pos += klen;
                    let value = buf[pos..pos + vlen].to_vec();
                    pos += vlen;
                    entries.push((key, value));
                }
                Ok(Node::Leaf { entries })
            }
            TAG_INTERNAL => {
                if n == 0 {
                    return Err(corrupt("internal node without children"));
                }
                if pos + n * 8 > buf.len() {
                    return Err(corrupt("truncated children"));
                }
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8")));
                    pos += 8;
                }
                let mut separators = Vec::with_capacity(n - 1);
                for _ in 0..n - 1 {
                    if pos + 2 > buf.len() {
                        return Err(corrupt("truncated separator"));
                    }
                    let klen =
                        u16::from_le_bytes(buf[pos..pos + 2].try_into().expect("2")) as usize;
                    pos += 2;
                    if pos + klen > buf.len() {
                        return Err(corrupt("truncated separator key"));
                    }
                    separators.push(buf[pos..pos + klen].to_vec());
                    pos += klen;
                }
                Ok(Node::Internal {
                    children,
                    separators,
                })
            }
            _ => Err(corrupt("unknown page tag")),
        }
    }

    /// For an internal node: index of the child that covers `key`.
    pub fn route(&self, key: &[u8]) -> usize {
        match self {
            Node::Internal { separators, .. } => {
                separators.partition_point(|s| s.as_slice() <= key)
            }
            Node::Leaf { .. } => panic!("route() on a leaf"),
        }
    }

    /// Append-optimized leaf split: moves only the final entry to the
    /// right node. Used when the overflowing insertion was at the end of
    /// the leaf (the sequential-load pattern), leaving the left leaf
    /// ~full — this is why B+Trees bulk-loaded in key order reach the
    /// ~1.12 space amplification the paper measures for WiredTiger,
    /// instead of the ~1.5 a half-split would produce.
    pub fn split_append(&mut self) -> (Vec<u8>, Node) {
        match self {
            Node::Leaf { entries } => {
                debug_assert!(entries.len() >= 2, "split of a 1-entry leaf");
                let last = entries.pop().expect("non-empty leaf");
                let sep = last.0.clone();
                (
                    sep,
                    Node::Leaf {
                        entries: vec![last],
                    },
                )
            }
            Node::Internal { .. } => self.split(),
        }
    }

    /// Splits a too-large node in half; returns `(separator, right node)`.
    /// `self` keeps the left half. The separator is the first key of the
    /// right half (for leaves) or the promoted middle key (internal).
    pub fn split(&mut self) -> (Vec<u8>, Node) {
        match self {
            Node::Leaf { entries } => {
                // Split by bytes, not count, so jagged value sizes still
                // halve evenly.
                let total: usize = entries.iter().map(|(k, v)| 6 + k.len() + v.len()).sum();
                let mut acc = 0;
                let mut cut = entries.len() / 2;
                for (i, (k, v)) in entries.iter().enumerate() {
                    acc += 6 + k.len() + v.len();
                    if acc * 2 >= total {
                        cut = (i + 1).min(entries.len() - 1).max(1);
                        break;
                    }
                }
                let right: Vec<_> = entries.split_off(cut);
                let sep = right[0].0.clone();
                (sep, Node::Leaf { entries: right })
            }
            Node::Internal {
                children,
                separators,
            } => {
                let mid = separators.len() / 2;
                let promoted = separators[mid].clone();
                let right_seps: Vec<_> = separators.split_off(mid + 1);
                separators.pop(); // remove promoted key from the left
                let right_children: Vec<_> = children.split_off(mid + 1);
                (
                    promoted,
                    Node::Internal {
                        children: right_children,
                        separators: right_seps,
                    },
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(pairs: &[(&str, &str)]) -> Node {
        Node::Leaf {
            entries: pairs
                .iter()
                .map(|(k, v)| (k.as_bytes().to_vec(), v.as_bytes().to_vec()))
                .collect(),
        }
    }

    #[test]
    fn leaf_round_trip() {
        let n = leaf(&[("a", "1"), ("b", "22"), ("c", "")]);
        let mut buf = Vec::new();
        n.encode(&mut buf);
        assert_eq!(buf.len(), n.encoded_len());
        assert_eq!(Node::decode(&buf).expect("decode"), n);
    }

    #[test]
    fn internal_round_trip() {
        let n = Node::Internal {
            children: vec![10, 20, 30],
            separators: vec![b"g".to_vec(), b"p".to_vec()],
        };
        let mut buf = Vec::new();
        n.encode(&mut buf);
        assert_eq!(buf.len(), n.encoded_len());
        assert_eq!(Node::decode(&buf).expect("decode"), n);
    }

    #[test]
    fn corrupt_pages_rejected() {
        assert!(Node::decode(&[]).is_err());
        assert!(Node::decode(&[9, 0, 0, 0, 0]).is_err(), "unknown tag");
        let n = leaf(&[("abc", "def")]);
        let mut buf = Vec::new();
        n.encode(&mut buf);
        assert!(Node::decode(&buf[..buf.len() - 2]).is_err());
    }

    #[test]
    fn routing() {
        let n = Node::Internal {
            children: vec![1, 2, 3],
            separators: vec![b"g".to_vec(), b"p".to_vec()],
        };
        assert_eq!(n.route(b"a"), 0);
        assert_eq!(n.route(b"g"), 1, "separator key routes right");
        assert_eq!(n.route(b"m"), 1);
        assert_eq!(n.route(b"p"), 2);
        assert_eq!(n.route(b"z"), 2);
    }

    #[test]
    fn leaf_split_halves_by_bytes() {
        let mut n = Node::Leaf {
            entries: (0..10u8)
                .map(|i| (vec![b'a' + i], vec![0u8; if i < 2 { 400 } else { 10 }]))
                .collect(),
        };
        let before = n.encoded_len();
        let (sep, right) = n.split();
        // Separator is the first right key and ordering is preserved.
        if let (Node::Leaf { entries: left }, Node::Leaf { entries: right_e }) = (&n, &right) {
            assert_eq!(right_e[0].0, sep);
            assert!(left.last().expect("left non-empty").0 < sep);
            assert_eq!(left.len() + right_e.len(), 10);
            // Byte-based split: the two big entries keep the left side small.
            assert!(left.len() < right_e.len());
        } else {
            panic!("expected leaves");
        }
        assert!(n.encoded_len() < before);
    }

    #[test]
    fn internal_split_promotes_middle() {
        let mut n = Node::Internal {
            children: vec![1, 2, 3, 4, 5],
            separators: vec![b"b".to_vec(), b"d".to_vec(), b"f".to_vec(), b"h".to_vec()],
        };
        let (sep, right) = n.split();
        assert_eq!(sep, b"f".to_vec());
        if let (
            Node::Internal {
                children: lc,
                separators: ls,
            },
            Node::Internal {
                children: rc,
                separators: rs,
            },
        ) = (&n, &right)
        {
            assert_eq!(lc.len(), ls.len() + 1);
            assert_eq!(rc.len(), rs.len() + 1);
            assert_eq!(lc.len() + rc.len(), 5);
            assert!(ls.iter().all(|s| s.as_slice() < sep.as_slice()));
            assert!(rs.iter().all(|s| s.as_slice() > sep.as_slice()));
        } else {
            panic!("expected internals");
        }
    }

    #[test]
    #[should_panic(expected = "route() on a leaf")]
    fn routing_on_leaf_panics() {
        leaf(&[("a", "1")]).route(b"a");
    }
}
