//! Engine tuning knobs.

use ptsbench_maint::MaintConfig;

/// Configuration of a [`crate::BTreeDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeOptions {
    /// Tree page size in bytes (WiredTiger leaf default: 32 KiB).
    /// Should be a multiple of the device page size.
    pub page_bytes: usize,
    /// Page-cache capacity in bytes (the paper configures 10 MB, §3.1).
    pub cache_bytes: u64,
    /// Whether updates are logged before being applied in cache.
    pub wal_enabled: bool,
    /// Whether each commit fsyncs the log.
    pub wal_fsync: bool,
    /// A checkpoint (write-back of all dirty pages + meta) runs after
    /// this many application bytes have been written since the last one.
    pub checkpoint_app_bytes: u64,
    /// Merge threshold: a page smaller than `page_bytes / merge_divisor`
    /// tries to merge with a sibling.
    pub merge_divisor: usize,
    /// Record phase spans and per-cause device attribution through the
    /// tracer attached to the device (no-op — and byte-identical to the
    /// untraced engine — when the device has no tracer or this is
    /// false, the default).
    pub trace: bool,
    /// Background-maintenance knobs. When `maint.enabled`, the
    /// byte-threshold checkpoint runs as a deferred job in bounded,
    /// rate-budgeted slices pumped between foreground ops instead of
    /// inline inside the triggering write; off (the default) keeps the
    /// seed inline-checkpoint behavior byte-identical.
    pub maint: MaintConfig,
}

impl Default for BTreeOptions {
    fn default() -> Self {
        Self {
            page_bytes: 32 << 10,
            cache_bytes: 10 << 20,
            wal_enabled: true,
            wal_fsync: false,
            checkpoint_app_bytes: 8 << 20,
            merge_divisor: 4,
            trace: false,
            maint: MaintConfig::default(),
        }
    }
}

impl BTreeOptions {
    /// A small configuration for unit tests (tiny pages and cache so
    /// splits, merges and evictions happen after a handful of writes).
    pub fn small() -> Self {
        Self {
            page_bytes: 4 << 10,
            cache_bytes: 64 << 10,
            wal_enabled: true,
            wal_fsync: false,
            checkpoint_app_bytes: 256 << 10,
            merge_divisor: 4,
            trace: false,
            maint: MaintConfig::default(),
        }
    }

    /// Scales the configuration to a drive of `device_bytes` capacity:
    /// WiredTiger-shaped 32 KiB pages, the paper's 10 MB cache : 400 GB
    /// drive proportion (§3.1, never below the pager's four-page
    /// minimum), and a checkpoint every 1/64th of the drive's worth of
    /// application writes. Symmetric with
    /// `LsmOptions::scaled_to_partition`: sizing follows the *drive*
    /// capacity, not the partition, so software over-provisioning does
    /// not change engine structure (§4.6).
    pub fn scaled_to_partition(device_bytes: u64) -> Self {
        let page_bytes: usize = 32 << 10;
        let proportional = (10u64 << 20).saturating_mul(device_bytes) / (400 << 30);
        let cache_bytes = proportional.max(4 * page_bytes as u64 + 1);
        Self {
            page_bytes,
            cache_bytes,
            checkpoint_app_bytes: (device_bytes / 64).max(1 << 20),
            ..Self::default()
        }
    }

    /// Validates option consistency; panics with a description on error.
    pub fn validate(&self) {
        assert!(
            self.page_bytes >= 1024,
            "pages must hold at least a few entries"
        );
        assert!(self.page_bytes <= 1 << 24);
        assert!(
            self.cache_bytes >= 4 * self.page_bytes as u64,
            "cache must hold at least four pages"
        );
        assert!(self.merge_divisor >= 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        BTreeOptions::default().validate();
        BTreeOptions::small().validate();
    }

    #[test]
    fn default_matches_wiredtiger_shape() {
        let o = BTreeOptions::default();
        assert_eq!(o.page_bytes, 32 << 10, "WiredTiger leaf pages are 32 KiB");
        assert_eq!(o.cache_bytes, 10 << 20, "paper configures a 10 MB cache");
    }

    #[test]
    #[should_panic(expected = "cache must hold")]
    fn tiny_cache_rejected() {
        BTreeOptions {
            cache_bytes: 1024,
            ..BTreeOptions::small()
        }
        .validate();
    }
}
