//! Write-ahead log for the B+Tree (the WiredTiger journal equivalent).
//!
//! Same record framing as the LSM WAL but truncated at checkpoints
//! rather than memtable flushes: after a checkpoint the log's contents
//! are no longer needed for recovery, so the file is rotated.

use ptsbench_vfs::{FileId, Vfs};

use crate::{BTreeError, Result};

/// Journal record tags.
const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// A record recovered from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A logged insert/overwrite.
    Put(Vec<u8>, Vec<u8>),
    /// A logged deletion.
    Delete(Vec<u8>),
}

/// The B+Tree journal.
#[derive(Debug)]
pub struct Journal {
    vfs: Vfs,
    file: FileId,
    seq: u64,
    buffer: Vec<u8>,
    page_size: usize,
    bytes_written: u64,
}

impl Journal {
    /// Creates `journal-0`.
    pub fn create(vfs: Vfs) -> Result<Self> {
        let page_size = vfs.page_size() as usize;
        let file = vfs.create("journal-0")?;
        Ok(Self {
            vfs,
            file,
            seq: 0,
            buffer: Vec::new(),
            page_size,
            bytes_written: 0,
        })
    }

    /// Logs an update.
    pub fn log_put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.append(TAG_PUT, key, Some(value))
    }

    /// Logs a deletion.
    pub fn log_delete(&mut self, key: &[u8]) -> Result<()> {
        self.append(TAG_DELETE, key, None)
    }

    fn append(&mut self, tag: u8, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        self.buffer.push(tag);
        self.buffer
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.buffer
            .extend_from_slice(&(value.map_or(0, |v| v.len()) as u32).to_le_bytes());
        self.buffer.extend_from_slice(key);
        if let Some(v) = value {
            self.buffer.extend_from_slice(v);
        }
        while self.buffer.len() >= self.page_size {
            let page: Vec<u8> = self.buffer.drain(..self.page_size).collect();
            self.vfs.append(self.file, &page)?;
            self.bytes_written += page.len() as u64;
        }
        Ok(())
    }

    /// Flushes buffered records; optionally blocks until durable.
    pub fn sync(&mut self, wait_durable: bool) -> Result<()> {
        if !self.buffer.is_empty() {
            let mut page = std::mem::take(&mut self.buffer);
            page.resize(self.page_size, 0);
            self.vfs.append(self.file, &page)?;
            self.bytes_written += page.len() as u64;
        }
        if wait_durable {
            self.vfs.fsync(self.file)?;
        }
        Ok(())
    }

    /// Truncates the journal after a checkpoint. The file is recycled in
    /// place (WiredTiger preallocates and reuses journal files), keeping
    /// its LBAs stable.
    pub fn truncate(&mut self) -> Result<()> {
        self.seq += 1;
        self.vfs.truncate(self.file, 0)?;
        self.buffer.clear();
        Ok(())
    }

    /// Bytes handed to the filesystem.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Opens the existing journal for appending (recovery path), or
    /// creates `journal-0` if none exists.
    pub fn open_or_create(vfs: Vfs) -> Result<Self> {
        if !vfs.exists("journal-0") {
            return Self::create(vfs);
        }
        let page_size = vfs.page_size() as usize;
        let file = vfs.open("journal-0")?;
        Ok(Self {
            vfs,
            file,
            seq: 0,
            buffer: Vec::new(),
            page_size,
            bytes_written: 0,
        })
    }

    /// Replays every record persisted in the journal since the last
    /// checkpoint truncation, skipping sync padding.
    pub fn replay(vfs: &Vfs) -> Result<Vec<JournalRecord>> {
        if !vfs.exists("journal-0") {
            return Ok(Vec::new());
        }
        let file = vfs.open("journal-0")?;
        let size = vfs.size(file)? as usize;
        let buf = vfs.read_at(file, 0, size)?;
        let page = vfs.page_size() as usize;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            match buf[pos] {
                0 => pos = ((pos / page) + 1) * page,
                tag @ (TAG_PUT | TAG_DELETE) => {
                    if pos + 9 > buf.len() {
                        return Err(BTreeError::Corruption("truncated journal header".into()));
                    }
                    let klen =
                        u32::from_le_bytes(buf[pos + 1..pos + 5].try_into().expect("4")) as usize;
                    let vlen =
                        u32::from_le_bytes(buf[pos + 5..pos + 9].try_into().expect("4")) as usize;
                    let kstart = pos + 9;
                    if kstart + klen + vlen > buf.len() {
                        return Err(BTreeError::Corruption("truncated journal payload".into()));
                    }
                    let key = buf[kstart..kstart + klen].to_vec();
                    if tag == TAG_PUT {
                        out.push(JournalRecord::Put(
                            key,
                            buf[kstart + klen..kstart + klen + vlen].to_vec(),
                        ));
                    } else {
                        out.push(JournalRecord::Delete(key));
                    }
                    pos = kstart + klen + vlen;
                }
                other => return Err(BTreeError::Corruption(format!("bad journal tag {other}"))),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbench_ssd::{DeviceConfig, DeviceProfile, Ssd};
    use ptsbench_vfs::VfsOptions;

    fn vfs() -> Vfs {
        let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 16 << 20));
        Vfs::whole_device(ssd.into_shared(), VfsOptions::default())
    }

    #[test]
    fn buffers_until_page_full() {
        let v = vfs();
        let mut j = Journal::create(v).expect("create");
        j.log_put(b"k", &[0u8; 100]).expect("log");
        assert_eq!(j.bytes_written(), 0);
        j.log_put(b"k", &[0u8; 5000]).expect("log");
        assert!(j.bytes_written() >= 4096);
    }

    #[test]
    fn truncate_recycles_in_place() {
        let v = vfs();
        let mut j = Journal::create(v.clone()).expect("create");
        j.log_delete(b"k").expect("log");
        j.sync(true).expect("sync");
        assert!(v.exists("journal-0"));
        j.truncate().expect("truncate");
        assert!(v.exists("journal-0"), "journal recycled in place");
        assert_eq!(v.size(v.open("journal-0").expect("open")).expect("size"), 0);
    }
}
