//! The page cache: fixed-budget caching of decoded pages with in-place
//! dirty write-back.
//!
//! This is the layer that gives the B+Tree its device-level signature:
//! page `n` always lives at file offset `n * page_bytes`, so every
//! write-back targets the same LBAs (Fig 4's confined footprint), and
//! the small cache (10 MB in the paper's setup) means nearly every
//! update eventually causes one full-page write.

use std::collections::HashMap;

use ptsbench_cache::CacheStats;
use ptsbench_vfs::{FileId, TraceHandle, Vfs};

use crate::node::Node;
use crate::{BTreeError, PageNo, Result};

/// Cumulative pager statistics. The caching traffic (hits, misses,
/// admissions, evictions, device bytes saved) uses the same
/// [`CacheStats`] accounting as the shared block cache so reports
/// render page-cache and block-cache behavior identically; the
/// write-back counters are pager-specific.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Page-cache traffic in block-cache terms: a hit serves a decoded
    /// page from memory (saving one page-sized device read), a miss
    /// reads and admits it, an eviction writes back and drops LRU.
    pub cache: CacheStats,
    /// Dirty pages written back (evictions + checkpoints).
    pub writebacks: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
}

struct CachedPage {
    node: Node,
    dirty: bool,
    last_access: u64,
}

/// Page cache over the tree file.
pub struct Pager {
    vfs: Vfs,
    file: FileId,
    page_bytes: usize,
    cache_bytes: u64,
    cache: HashMap<PageNo, CachedPage>,
    cached_bytes: u64,
    access_clock: u64,
    /// Next page number to materialize (page 0 is the meta page).
    next_page: PageNo,
    free_list: Vec<PageNo>,
    stats: PagerStats,
    encode_buf: Vec<u8>,
    /// Tracing context; `None` until [`Pager::attach_trace`].
    trace: Option<TraceHandle>,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("pages", &self.next_page)
            .field("cached", &self.cache.len())
            .field("free", &self.free_list.len())
            .finish()
    }
}

impl Pager {
    /// Creates the tree file with a zeroed meta page.
    pub fn create(vfs: Vfs, file_name: &str, page_bytes: usize, cache_bytes: u64) -> Result<Self> {
        let file = vfs.create(file_name)?;
        // Materialize the meta page.
        vfs.write_at(file, 0, &vec![0u8; page_bytes])?;
        Ok(Self {
            vfs,
            file,
            page_bytes,
            cache_bytes,
            cache: HashMap::new(),
            cached_bytes: 0,
            access_clock: 0,
            next_page: 1,
            free_list: Vec::new(),
            stats: PagerStats::default(),
            encode_buf: Vec::new(),
            trace: None,
        })
    }

    /// Attaches the tracing context: page-cache hits record
    /// `btree.cache_hit` markers and misses a `btree.page_load` span.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Opens an existing tree file (recovery path). The page count comes
    /// from the file size; the free list starts empty — the caller
    /// rebuilds it from tree reachability via [`Pager::set_free_list`].
    pub fn open_existing(
        vfs: Vfs,
        file_name: &str,
        page_bytes: usize,
        cache_bytes: u64,
    ) -> Result<Self> {
        let file = vfs.open(file_name)?;
        let size = vfs.size(file)?;
        if size == 0 || size % page_bytes as u64 != 0 {
            return Err(BTreeError::Corruption(format!(
                "tree file size {size} is not a multiple of the {page_bytes}-byte page size"
            )));
        }
        Ok(Self {
            vfs,
            file,
            page_bytes,
            cache_bytes,
            cache: HashMap::new(),
            cached_bytes: 0,
            access_clock: 0,
            next_page: size / page_bytes as u64,
            free_list: Vec::new(),
            stats: PagerStats::default(),
            encode_buf: Vec::new(),
            trace: None,
        })
    }

    /// Installs a rebuilt free list (recovery path).
    pub fn set_free_list(&mut self, pages: Vec<PageNo>) {
        debug_assert!(pages.iter().all(|&p| p >= 1 && p < self.next_page));
        self.free_list = pages;
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Number of pages ever materialized (including freed ones).
    pub fn page_count(&self) -> PageNo {
        self.next_page
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Allocates a page, reusing freed pages first (keeping the file's
    /// LBA footprint stable) and extending the file otherwise.
    pub fn allocate(&mut self, node: Node) -> Result<PageNo> {
        self.stats.allocations += 1;
        let page = match self.free_list.pop() {
            Some(p) => p,
            None => {
                let p = self.next_page;
                // Materialize the new page at EOF so the file never has
                // holes (an append at the device level).
                self.vfs.write_at(
                    self.file,
                    p * self.page_bytes as u64,
                    &vec![0u8; self.page_bytes],
                )?;
                self.next_page += 1;
                p
            }
        };
        self.insert_cached(page, node, true)?;
        Ok(page)
    }

    /// Returns a page to the free list (contents become garbage).
    pub fn free(&mut self, page: PageNo) {
        if let Some(c) = self.cache.remove(&page) {
            self.cached_bytes -= c.node.encoded_len() as u64;
        }
        debug_assert!(
            !self.free_list.contains(&page),
            "double free of page {page}"
        );
        self.free_list.push(page);
    }

    /// Reads a page (through the cache), returning a clone of the node.
    pub fn read(&mut self, page: PageNo) -> Result<Node> {
        self.access_clock += 1;
        let clock = self.access_clock;
        if let Some(c) = self.cache.get_mut(&page) {
            c.last_access = clock;
            self.stats.cache.hits += 1;
            self.stats.cache.bytes_saved += self.page_bytes as u64;
            if let Some(t) = &self.trace {
                t.mark("btree.cache_hit", t.current_cause());
            }
            return Ok(c.node.clone());
        }
        self.stats.cache.misses += 1;
        let span = self
            .trace
            .as_ref()
            .map(|t| t.begin("btree.page_load", t.current_cause()));
        let load = || -> Result<Node> {
            let buf =
                self.vfs
                    .read_at(self.file, page * self.page_bytes as u64, self.page_bytes)?;
            if buf.len() < self.page_bytes {
                return Err(BTreeError::Corruption(format!("short read of page {page}")));
            }
            Node::decode(&buf)
        };
        let node = load();
        if let (Some(t), Some(span)) = (&self.trace, span) {
            t.end(span);
        }
        let node = node?;
        self.insert_cached(page, node.clone(), false)?;
        Ok(node)
    }

    /// Replaces a page's contents in cache and marks it dirty; the write
    /// reaches the file on eviction or checkpoint.
    pub fn write(&mut self, page: PageNo, node: Node) -> Result<()> {
        assert!(
            node.encoded_len() <= self.page_bytes,
            "node of {} bytes exceeds page size {}",
            node.encoded_len(),
            self.page_bytes
        );
        if let Some(c) = self.cache.get_mut(&page) {
            self.cached_bytes =
                self.cached_bytes - c.node.encoded_len() as u64 + node.encoded_len() as u64;
            c.node = node;
            c.dirty = true;
            self.access_clock += 1;
            c.last_access = self.access_clock;
            self.evict_as_needed()?;
            return Ok(());
        }
        self.insert_cached(page, node, true)
    }

    fn insert_cached(&mut self, page: PageNo, node: Node, dirty: bool) -> Result<()> {
        self.access_clock += 1;
        self.stats.cache.admissions += 1;
        self.cached_bytes += node.encoded_len() as u64;
        self.cache.insert(
            page,
            CachedPage {
                node,
                dirty,
                last_access: self.access_clock,
            },
        );
        self.evict_as_needed()
    }

    fn evict_as_needed(&mut self) -> Result<()> {
        while self.cached_bytes > self.cache_bytes && self.cache.len() > 1 {
            let victim = self
                .cache
                .iter()
                .min_by_key(|(_, c)| c.last_access)
                .map(|(&p, _)| p)
                .expect("cache non-empty");
            self.flush_page(victim)?;
            let c = self.cache.remove(&victim).expect("victim cached");
            self.cached_bytes -= c.node.encoded_len() as u64;
            self.stats.cache.evictions += 1;
        }
        Ok(())
    }

    fn flush_page(&mut self, page: PageNo) -> Result<()> {
        self.flush_page_opts(page, false)
    }

    fn flush_page_opts(&mut self, page: PageNo, background: bool) -> Result<()> {
        let c = self.cache.get(&page).expect("page cached");
        if !c.dirty {
            return Ok(());
        }
        c.node.encode(&mut self.encode_buf);
        self.encode_buf.resize(self.page_bytes, 0);
        let buf = std::mem::take(&mut self.encode_buf);
        let offset = page * self.page_bytes as u64;
        let written = if background {
            self.vfs.write_at_bg(self.file, offset, &buf)
        } else {
            self.vfs.write_at(self.file, offset, &buf)
        };
        self.encode_buf = buf;
        written?;
        self.stats.writebacks += 1;
        self.cache.get_mut(&page).expect("page cached").dirty = false;
        Ok(())
    }

    /// Writes back dirty pages — lowest page number first, for
    /// deterministic slicing — through the detached background path
    /// until `max_bytes` of writes have been issued or the cache is
    /// clean. Pages stay cached (now clean); returns the bytes written.
    pub fn flush_dirty_bg(&mut self, max_bytes: u64) -> Result<u64> {
        let mut dirty: Vec<PageNo> = self
            .cache
            .iter()
            .filter(|(_, c)| c.dirty)
            .map(|(&p, _)| p)
            .collect();
        dirty.sort_unstable();
        let mut written = 0u64;
        for page in dirty {
            if written >= max_bytes {
                break;
            }
            self.flush_page_opts(page, true)?;
            written += self.page_bytes as u64;
        }
        Ok(written)
    }

    /// Writes the metadata page through the detached background path
    /// **without** an fsync — the caller gates any dependent install on
    /// [`Pager::durable_at`].
    pub fn write_meta_bg(&mut self, meta: &[u8]) -> Result<()> {
        assert!(meta.len() <= self.page_bytes);
        let mut meta_buf = meta.to_vec();
        meta_buf.resize(self.page_bytes, 0);
        self.vfs.write_at_bg(self.file, 0, &meta_buf)?;
        Ok(())
    }

    /// The simulated time at which everything written to the tree file
    /// so far (pages and metadata) is durable.
    pub fn durable_at(&self) -> Result<u64> {
        Ok(self.vfs.durable_at(self.file)?)
    }

    /// Blocks until the tree file is durable (forced background
    /// installs; the inline path fsyncs inside [`Pager::checkpoint`]).
    pub fn fsync(&mut self) -> Result<()> {
        Ok(self.vfs.fsync(self.file)?)
    }

    /// Counts a checkpoint completed outside [`Pager::checkpoint`] (the
    /// background install path).
    pub fn note_checkpoint(&mut self) {
        self.stats.checkpoints += 1;
    }

    /// Writes every dirty page plus the metadata page, then fsyncs —
    /// the checkpoint operation.
    pub fn checkpoint(&mut self, meta: &[u8]) -> Result<()> {
        assert!(meta.len() <= self.page_bytes);
        let mut dirty: Vec<PageNo> = self
            .cache
            .iter()
            .filter(|(_, c)| c.dirty)
            .map(|(&p, _)| p)
            .collect();
        dirty.sort_unstable();
        for page in dirty {
            self.flush_page(page)?;
        }
        let mut meta_buf = meta.to_vec();
        meta_buf.resize(self.page_bytes, 0);
        self.vfs.write_at(self.file, 0, &meta_buf)?;
        self.vfs.fsync(self.file)?;
        self.stats.checkpoints += 1;
        Ok(())
    }

    /// Reads the metadata page (bypassing the node cache).
    pub fn read_meta(&mut self) -> Result<Vec<u8>> {
        Ok(self.vfs.read_at(self.file, 0, self.page_bytes)?)
    }

    /// Current number of dirty pages in cache.
    pub fn dirty_pages(&self) -> usize {
        self.cache.values().filter(|c| c.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbench_ssd::{DeviceConfig, DeviceProfile, Ssd};
    use ptsbench_vfs::VfsOptions;

    fn vfs() -> Vfs {
        let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 32 << 20));
        Vfs::whole_device(ssd.into_shared(), VfsOptions::default())
    }

    fn leaf(tag: u8, bytes: usize) -> Node {
        Node::Leaf {
            entries: vec![(vec![tag], vec![tag; bytes])],
        }
    }

    #[test]
    fn allocate_read_write_round_trip() {
        let mut p = Pager::create(vfs(), "t.db", 4096, 64 << 10).expect("create");
        let page = p.allocate(leaf(1, 10)).expect("alloc");
        assert_eq!(p.read(page).expect("read"), leaf(1, 10));
        p.write(page, leaf(2, 20)).expect("write");
        assert_eq!(p.read(page).expect("read"), leaf(2, 20));
    }

    #[test]
    fn eviction_writes_back_and_reload_works() {
        // Cache of 16 KiB with ~3 KiB nodes: ~5 fit.
        let mut p = Pager::create(vfs(), "t.db", 4096, 16 << 10).expect("create");
        let pages: Vec<PageNo> = (0..10)
            .map(|i| p.allocate(leaf(i, 3000)).expect("alloc"))
            .collect();
        assert!(p.stats().writebacks > 0, "evictions must write dirty pages");
        assert!(p.stats().cache.evictions > 0);
        // Everything still readable (from disk where evicted).
        for (i, &page) in pages.iter().enumerate() {
            assert_eq!(p.read(page).expect("read"), leaf(i as u8, 3000));
        }
        let s = p.stats().cache;
        assert!(s.misses > 0);
        assert_eq!(
            s.bytes_saved,
            s.hits * 4096,
            "every hit credits one page of avoided device reads"
        );
    }

    #[test]
    fn in_place_writeback_hits_same_lbas() {
        let v = vfs();
        let mut p = Pager::create(v.clone(), "t.db", 4096, 16 << 10).expect("create");
        let page = p.allocate(leaf(1, 3000)).expect("alloc");
        p.checkpoint(b"m1").expect("ckpt");
        let mapped_before = v.ssd().lock().mapped_pages();
        for i in 0..20 {
            p.write(page, leaf(i, 3000)).expect("write");
            p.checkpoint(b"m1").expect("ckpt");
        }
        assert_eq!(
            v.ssd().lock().mapped_pages(),
            mapped_before,
            "rewrites must not grow the LBA footprint"
        );
    }

    #[test]
    fn checkpoint_flushes_all_dirty() {
        let mut p = Pager::create(vfs(), "t.db", 4096, 64 << 10).expect("create");
        for i in 0..5 {
            p.allocate(leaf(i, 100)).expect("alloc");
        }
        assert!(p.dirty_pages() > 0);
        p.checkpoint(b"meta-bytes").expect("ckpt");
        assert_eq!(p.dirty_pages(), 0);
        let meta = p.read_meta().expect("meta");
        assert_eq!(&meta[..10], b"meta-bytes");
    }

    #[test]
    fn free_list_reuses_pages() {
        let mut p = Pager::create(vfs(), "t.db", 4096, 64 << 10).expect("create");
        let a = p.allocate(leaf(1, 10)).expect("alloc");
        let count = p.page_count();
        p.free(a);
        let b = p.allocate(leaf(2, 10)).expect("alloc");
        assert_eq!(a, b, "freed page must be reused");
        assert_eq!(p.page_count(), count, "file must not grow");
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_node_panics() {
        let mut p = Pager::create(vfs(), "t.db", 4096, 64 << 10).expect("create");
        let page = p.allocate(leaf(1, 10)).expect("alloc");
        p.write(page, leaf(2, 8000)).expect("write");
    }
}
