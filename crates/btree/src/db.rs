//! The B+Tree database: public API, tree algorithms, checkpointing.

use ptsbench_maint::{JobKind, MaintScheduler, MaintStats};
use ptsbench_vfs::{Cause, TraceHandle, Vfs};

use crate::log::Journal;
use crate::node::Node;
use crate::options::BTreeOptions;
use crate::pager::{Pager, PagerStats};
use crate::{BTreeError, PageNo, Result};

/// Cumulative engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BTreeStats {
    /// Put operations accepted.
    pub puts: u64,
    /// Get operations served.
    pub gets: u64,
    /// Delete operations accepted.
    pub deletes: u64,
    /// Application payload bytes written (keys + values of puts/deletes).
    pub app_bytes_written: u64,
    /// Leaf/internal page splits.
    pub splits: u64,
    /// Page merges.
    pub merges: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
}

const META_MAGIC: &[u8; 6] = b"BTREE1";

/// A slice-resumable fuzzy checkpoint. There is no materialized work
/// list: each slice asks the pager for its dirty pages, so foreground
/// writes that re-dirty pages mid-job simply extend the cleaning phase
/// instead of invalidating a snapshot.
struct CkptJob {
    /// `(root, entries)` captured when the metadata page was written
    /// through the background path; `None` until the cache is clean.
    /// The install (journal truncation) only proceeds while the
    /// captured pair still matches the live tree — a foreground write
    /// in between restarts the cleaning phase.
    meta: Option<(PageNo, u64)>,
}

struct MaintState {
    sched: MaintScheduler,
    job: Option<CkptJob>,
}

impl MaintState {
    fn has_work(&self) -> bool {
        self.job.is_some() || self.sched.pending() > 0
    }
}

fn maint_for(vfs: &Vfs, opts: &BTreeOptions) -> Option<MaintState> {
    opts.maint.enabled.then(|| MaintState {
        sched: MaintScheduler::new(opts.maint, vfs.clock().now()),
        job: None,
    })
}

/// An on-disk B+Tree key-value store on a simulated flash stack.
pub struct BTreeDb {
    pager: Pager,
    journal: Option<Journal>,
    opts: BTreeOptions,
    root: PageNo,
    entries: u64,
    stats: BTreeStats,
    bytes_since_checkpoint: u64,
    /// Deferred-checkpoint state; `None` keeps the seed inline path.
    maint: Option<MaintState>,
    vfs: Vfs,
    /// Tracing context (inert unless `opts.trace` and the device has a
    /// tracer attached).
    trace: TraceHandle,
}

impl std::fmt::Debug for BTreeDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTreeDb")
            .field("root", &self.root)
            .field("entries", &self.entries)
            .field("pages", &self.pager.page_count())
            .finish()
    }
}

impl BTreeDb {
    /// Opens a fresh database on the filesystem.
    pub fn open(vfs: Vfs, opts: BTreeOptions) -> Result<Self> {
        opts.validate();
        let trace = TraceHandle::from_vfs(&vfs, opts.trace);
        let mut pager = Pager::create(vfs.clone(), "btree.db", opts.page_bytes, opts.cache_bytes)?;
        pager.attach_trace(trace.clone());
        let journal = if opts.wal_enabled {
            Some(Journal::create(vfs.clone())?)
        } else {
            None
        };
        let maint = maint_for(&vfs, &opts);
        Ok(Self {
            pager,
            journal,
            opts,
            root: 0,
            entries: 0,
            stats: BTreeStats::default(),
            bytes_since_checkpoint: 0,
            maint,
            vfs,
            trace,
        })
    }

    /// Recovers a database from an existing filesystem: reads the
    /// checkpointed metadata page, rebuilds the page free list from tree
    /// reachability, and replays the journal on top (the WiredTiger
    /// recovery sequence: last checkpoint + log).
    pub fn recover(vfs: Vfs, opts: BTreeOptions) -> Result<Self> {
        opts.validate();
        let trace = TraceHandle::from_vfs(&vfs, opts.trace);
        let mut pager =
            Pager::open_existing(vfs.clone(), "btree.db", opts.page_bytes, opts.cache_bytes)?;
        pager.attach_trace(trace.clone());
        let meta = pager.read_meta()?;
        if &meta[..META_MAGIC.len()] != META_MAGIC {
            return Err(BTreeError::Corruption(
                "no checkpointed metadata (magic missing)".into(),
            ));
        }
        let root = u64::from_le_bytes(meta[6..14].try_into().expect("8 bytes"));
        let entries = u64::from_le_bytes(meta[14..22].try_into().expect("8 bytes"));
        if root >= pager.page_count() {
            return Err(BTreeError::Corruption(format!(
                "meta root {root} beyond file end ({} pages)",
                pager.page_count()
            )));
        }

        let maint = maint_for(&vfs, &opts);
        let mut db = Self {
            pager,
            journal: None, // attached after replay so replay is not re-logged
            opts,
            root,
            entries,
            stats: BTreeStats::default(),
            bytes_since_checkpoint: 0,
            maint,
            vfs: vfs.clone(),
            trace,
        };

        // Rebuild the free list: pages not reachable from the root are
        // garbage from un-checkpointed allocations or old frees.
        let mut reachable = vec![false; db.pager.page_count() as usize];
        reachable[0] = true; // meta page
        if root != 0 {
            db.mark_reachable(root, &mut reachable)?;
        }
        let free: Vec<PageNo> = (1..db.pager.page_count())
            .filter(|&p| !reachable[p as usize])
            .collect();
        db.pager.set_free_list(free);

        // Replay the journal (records since the last checkpoint).
        let records = if db.opts.wal_enabled {
            Journal::replay(&vfs)?
        } else {
            Vec::new()
        };
        for record in records {
            match record {
                crate::log::JournalRecord::Put(k, v) => db.insert_entry(&k, &v)?,
                crate::log::JournalRecord::Delete(k) => {
                    db.remove_entry(&k)?;
                }
            }
        }
        if db.opts.wal_enabled {
            db.journal = Some(Journal::open_or_create(vfs)?);
        }
        // Make the recovered state durable and truncate the journal.
        db.checkpoint()?;
        Ok(db)
    }

    fn mark_reachable(&mut self, page: PageNo, seen: &mut [bool]) -> Result<()> {
        if seen[page as usize] {
            return Err(BTreeError::Corruption(format!(
                "page {page} reachable twice"
            )));
        }
        seen[page as usize] = true;
        if let Node::Internal { children, .. } = self.pager.read(page)? {
            for child in children {
                if child >= seen.len() as u64 {
                    return Err(BTreeError::Corruption(format!("child {child} beyond file")));
                }
                self.mark_reachable(child, seen)?;
            }
        }
        Ok(())
    }

    /// The engine options.
    pub fn options(&self) -> &BTreeOptions {
        &self.opts
    }

    /// The underlying filesystem (for disk-utilization observation).
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BTreeStats {
        self.stats
    }

    /// Page-cache statistics.
    pub fn pager_stats(&self) -> PagerStats {
        self.pager.stats()
    }

    /// The page-cache traffic in shared-[`ptsbench_cache::CacheStats`] terms, symmetric
    /// with the other engines' `cache_stats` accessors. The B+Tree
    /// always runs its pager cache, so this is never `None`-like: the
    /// counters are live from the first read.
    pub fn cache_stats(&self) -> ptsbench_cache::CacheStats {
        self.pager.stats().cache
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let pair_bytes = 6 + key.len() + value.len();
        if pair_bytes + 5 > self.opts.page_bytes {
            return Err(BTreeError::PairTooLarge {
                pair_bytes,
                page_bytes: self.opts.page_bytes,
            });
        }
        self.stats.puts += 1;
        self.stats.app_bytes_written += (key.len() + value.len()) as u64;
        self.bytes_since_checkpoint += (key.len() + value.len()) as u64;
        if let Some(j) = self.journal.as_mut() {
            let _cause = self.trace.cause(Cause::Wal);
            let span = self.trace.begin("btree.journal", Cause::Wal);
            j.log_put(key, value)?;
            if self.opts.wal_fsync {
                j.sync(true)?;
            }
            self.trace.end(span);
        }
        self.insert_entry(key, value)?;
        self.maybe_checkpoint()
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        self.stats.deletes += 1;
        self.stats.app_bytes_written += key.len() as u64;
        self.bytes_since_checkpoint += key.len() as u64;
        if let Some(j) = self.journal.as_mut() {
            let _cause = self.trace.cause(Cause::Wal);
            let span = self.trace.begin("btree.journal", Cause::Wal);
            j.log_delete(key)?;
            if self.opts.wal_fsync {
                j.sync(true)?;
            }
            self.trace.end(span);
        }
        let existed = self.remove_entry(key)?;
        self.maybe_checkpoint()?;
        Ok(existed)
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.stats.gets += 1;
        if self.root == 0 {
            return Ok(None);
        }
        let walk = self
            .trace
            .begin("btree.page_walk", self.trace.current_cause());
        let mut page = self.root;
        let result = loop {
            let node = match self.pager.read(page) {
                Ok(n) => n,
                Err(e) => break Err(e),
            };
            match node {
                Node::Internal { children, .. } => {
                    let idx = {
                        // Re-decode route on the same node.
                        match self.pager.read(page) {
                            Ok(n) => n.route(key),
                            Err(e) => break Err(e),
                        }
                    };
                    page = children[idx];
                }
                Node::Leaf { entries } => {
                    break Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1.clone()));
                }
            }
        };
        self.trace.end(walk);
        result
    }

    /// Streaming range scan: entries with `start <= key < end` (`end`
    /// `None` = unbounded), up to `limit` results, loading one page at a
    /// time. Memory stays proportional to tree height plus one leaf.
    pub fn scan_iter(&mut self, start: &[u8], end: Option<&[u8]>, limit: usize) -> BTreeScan<'_> {
        BTreeScan {
            pager: &mut self.pager,
            descend_from: if self.root != 0 && limit > 0 {
                Some(self.root)
            } else {
                None
            },
            first_descent: true,
            stack: Vec::new(),
            leaf: Vec::new().into_iter(),
            start: start.to_vec(),
            end: end.map(|e| e.to_vec()),
            remaining: limit,
        }
    }

    /// Range scan materialized into a vector (see [`BTreeDb::scan_iter`]).
    pub fn scan(
        &mut self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_iter(start, end, limit).collect()
    }

    /// Forces buffered journal records onto the device and waits for
    /// durability. Data synced here survives a crash even without a
    /// checkpoint.
    pub fn sync_journal(&mut self) -> Result<()> {
        if let Some(j) = self.journal.as_mut() {
            j.sync(true)?;
        }
        Ok(())
    }

    /// Forces a checkpoint: all dirty pages and metadata reach the
    /// device, the journal truncates.
    pub fn checkpoint(&mut self) -> Result<()> {
        let _cause = self.trace.cause(Cause::Checkpoint);
        let span = self.trace.begin("btree.checkpoint", Cause::Checkpoint);
        let result = self.checkpoint_inner();
        self.trace.end(span);
        result
    }

    fn checkpoint_inner(&mut self) -> Result<()> {
        if let Some(j) = self.journal.as_mut() {
            j.sync(true)?;
        }
        let mut meta = Vec::with_capacity(32);
        meta.extend_from_slice(META_MAGIC);
        meta.extend_from_slice(&self.root.to_le_bytes());
        meta.extend_from_slice(&self.entries.to_le_bytes());
        self.pager.checkpoint(&meta)?;
        if let Some(j) = self.journal.as_mut() {
            j.truncate()?;
        }
        self.stats.checkpoints += 1;
        self.bytes_since_checkpoint = 0;
        if let Some(m) = self.maint.as_mut() {
            // An inline checkpoint supersedes any in-flight background
            // job: everything the job would install is now durable.
            m.job = None;
        }
        Ok(())
    }

    fn maybe_checkpoint(&mut self) -> Result<()> {
        if self.bytes_since_checkpoint >= self.opts.checkpoint_app_bytes {
            if let Some(m) = self.maint.as_mut() {
                // Deferred: the harness pumps the ticket forward in
                // bounded background slices between foreground ops.
                m.sched.enqueue(JobKind::Checkpoint);
            } else {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    // ---- Background maintenance -------------------------------------
    //
    // In maintenance mode the byte-threshold checkpoint never runs
    // inline inside the triggering put: `maybe_checkpoint` enqueues a
    // `Checkpoint` ticket and the harness pumps `run_maintenance_slice`
    // between foreground ops. The job is a fuzzy checkpoint: each slice
    // writes back a byte-bounded batch of dirty pages through the
    // detached background path, paced by the scheduler's token bucket;
    // once the cache is clean the metadata page is written, and once
    // the tree file is durable the journal truncates — the install.
    // Foreground writes that re-dirty pages mid-job extend the cleaning
    // phase (and invalidate a written-but-not-installed metadata page),
    // so the install is always consistent with the on-disk tree.

    /// Whether background-maintenance mode is on.
    pub fn maint_enabled(&self) -> bool {
        self.maint.is_some()
    }

    /// Background-maintenance counters; `None` when maintenance is off.
    pub fn maint_stats(&self) -> Option<MaintStats> {
        self.maint.as_ref().map(|m| m.sched.stats)
    }

    /// Runs at most one bounded checkpoint slice, if work is pending
    /// and the rate budget and device-backlog gate allow it. Returns
    /// whether any forward progress was made (callers may pump in a
    /// loop until `false`).
    pub fn run_maintenance_slice(&mut self) -> Result<bool> {
        self.maintenance_slice_inner(false)
    }

    /// Drains every outstanding checkpoint job to completion with
    /// forced slices. Callers that end a run or leave a `ClockBarrier`
    /// must drain first so no shard exits with a half-written
    /// checkpoint.
    pub fn drain_maintenance(&mut self) -> Result<()> {
        if self.maint.is_none() {
            return Ok(());
        }
        let mut spins = 0u32;
        while self.maint.as_ref().expect("maintenance mode").has_work() {
            if self.maintenance_slice_inner(true)? {
                spins = 0;
            } else {
                // Only stale tickets were consumed; a couple of empty
                // rounds means we are done.
                spins += 1;
                if spins > 2 {
                    break;
                }
            }
        }
        Ok(())
    }

    /// The urgency condition that bypasses pacing: the journal backlog
    /// (bytes logged since the last completed checkpoint) has outgrown
    /// the space-amplification ceiling over the checkpoint threshold.
    /// Without it a write load faster than the maintenance rate budget
    /// grows the journal — pure space overhead — without bound.
    fn backlog_exceeded(&self) -> bool {
        let Some(m) = &self.maint else {
            return false;
        };
        self.bytes_since_checkpoint > m.sched.cfg().max_space_amp * self.opts.checkpoint_app_bytes
    }

    fn maintenance_slice_inner(&mut self, forced: bool) -> Result<bool> {
        if self.maint.is_none() {
            return Ok(false);
        }
        let forced = forced || self.backlog_exceeded();
        let now = self.vfs.clock().now();
        let backlog = self.vfs.device_backlog_ns();
        {
            let m = self.maint.as_mut().expect("maintenance mode");
            if !forced && backlog > m.sched.cfg().max_backlog_ns {
                return Ok(false);
            }
            if m.job.is_none() {
                let Some(kind) = m.sched.pop_ready(now, forced) else {
                    return Ok(false);
                };
                debug_assert_eq!(kind, JobKind::Checkpoint, "btree only checkpoints");
                m.job = Some(CkptJob { meta: None });
            } else if !m.sched.budget_ready(now, forced) {
                return Ok(false);
            }
        }
        let progressed = self.ckpt_run_slice(forced)?;
        if progressed {
            self.maint
                .as_mut()
                .expect("maintenance mode")
                .sched
                .stats
                .slices += 1;
        }
        Ok(progressed)
    }

    fn ckpt_run_slice(&mut self, forced: bool) -> Result<bool> {
        let _cause = self.trace.cause(Cause::Checkpoint);
        let span = self
            .trace
            .begin(JobKind::Checkpoint.span_label(), Cause::Checkpoint);
        let result = self.ckpt_run_slice_inner(forced);
        self.trace.end(span);
        result
    }

    /// One checkpoint increment: a batch of page write-backs, the
    /// metadata write, or the durability-gated install — whichever the
    /// job needs next. `Ok(false)` means the job is blocked waiting for
    /// durability (nothing runnable until the clock advances).
    fn ckpt_run_slice_inner(&mut self, forced: bool) -> Result<bool> {
        let slice_bytes = {
            let m = self.maint.as_ref().expect("maintenance mode");
            m.sched.cfg().slice_bytes.max(1)
        };
        // Phase 1: clean the cache, one byte-bounded batch per slice.
        if self.pager.dirty_pages() > 0 {
            let written = self.pager.flush_dirty_bg(slice_bytes)?;
            let now = self.vfs.clock().now();
            let m = self.maint.as_mut().expect("maintenance mode");
            m.sched.charge(now, written, false);
            // Any previously written metadata predates these pages.
            m.job.as_mut().expect("job in progress").meta = None;
            return Ok(true);
        }
        // Phase 2: write the metadata page once per clean point.
        let captured = self
            .maint
            .as_ref()
            .expect("maintenance mode")
            .job
            .as_ref()
            .expect("job in progress")
            .meta;
        if captured != Some((self.root, self.entries)) {
            let mut meta = Vec::with_capacity(32);
            meta.extend_from_slice(META_MAGIC);
            meta.extend_from_slice(&self.root.to_le_bytes());
            meta.extend_from_slice(&self.entries.to_le_bytes());
            self.pager.write_meta_bg(&meta)?;
            let page_bytes = self.pager.page_bytes() as u64;
            let now = self.vfs.clock().now();
            let m = self.maint.as_mut().expect("maintenance mode");
            m.sched.charge(now, page_bytes, false);
            m.job.as_mut().expect("job in progress").meta = Some((self.root, self.entries));
            return Ok(true);
        }
        // Phase 3: install — truncate the journal once the tree file
        // (pages + metadata) is durable. A blocked wait returns `false`
        // so the pump stops spinning; `drain` forces the sync.
        let now = self.vfs.clock().now();
        if self.pager.durable_at()? > now {
            if !forced {
                return Ok(false);
            }
            self.pager.fsync()?;
        }
        if let Some(j) = self.journal.as_mut() {
            j.truncate()?;
        }
        self.pager.note_checkpoint();
        self.stats.checkpoints += 1;
        self.bytes_since_checkpoint = 0;
        let m = self.maint.as_mut().expect("maintenance mode");
        m.sched.stats.jobs += 1;
        m.sched.stats.installs += 1;
        m.job = None;
        Ok(true)
    }

    // ----- insertion -----

    fn insert_entry(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.root == 0 {
            let root = self.pager.allocate(Node::Leaf {
                entries: vec![(key.to_vec(), value.to_vec())],
            })?;
            self.root = root;
            self.entries = 1;
            return Ok(());
        }
        // Descend, recording the path of (page, child index).
        let mut path: Vec<(PageNo, usize)> = Vec::new();
        let mut page = self.root;
        let mut node = self.pager.read(page)?;
        while let Node::Internal { ref children, .. } = node {
            let idx = node.route(key);
            let child = children[idx];
            path.push((page, idx));
            page = child;
            node = self.pager.read(page)?;
        }
        let Node::Leaf { ref mut entries } = node else {
            unreachable!("descent ends at a leaf")
        };
        let mut appended_last = false;
        match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => entries[i].1 = value.to_vec(),
            Err(i) => {
                appended_last = i == entries.len();
                entries.insert(i, (key.to_vec(), value.to_vec()));
                self.entries += 1;
            }
        }
        if node.encoded_len() <= self.opts.page_bytes {
            return self.pager.write(page, node);
        }

        // Split, propagating up the path. Inserts at the tail of a leaf
        // (sequential loads) use the append-optimized split to keep
        // leaves ~full.
        let (mut sep, right) = if appended_last {
            node.split_append()
        } else {
            node.split()
        };
        self.stats.splits += 1;
        self.pager.write(page, node)?;
        let mut left_page = page;
        let mut right_page = self.pager.allocate(right)?;
        loop {
            match path.pop() {
                Some((ppage, idx)) => {
                    let mut pnode = self.pager.read(ppage)?;
                    let Node::Internal {
                        ref mut children,
                        ref mut separators,
                    } = pnode
                    else {
                        unreachable!("path holds internal nodes")
                    };
                    separators.insert(idx, sep);
                    children.insert(idx + 1, right_page);
                    if pnode.encoded_len() <= self.opts.page_bytes {
                        return self.pager.write(ppage, pnode);
                    }
                    let (psep, pright) = pnode.split();
                    self.stats.splits += 1;
                    self.pager.write(ppage, pnode)?;
                    sep = psep;
                    left_page = ppage;
                    right_page = self.pager.allocate(pright)?;
                }
                None => {
                    let new_root = Node::Internal {
                        children: vec![left_page, right_page],
                        separators: vec![sep],
                    };
                    self.root = self.pager.allocate(new_root)?;
                    return Ok(());
                }
            }
        }
    }

    // ----- deletion -----

    fn remove_entry(&mut self, key: &[u8]) -> Result<bool> {
        if self.root == 0 {
            return Ok(false);
        }
        let mut path: Vec<(PageNo, usize)> = Vec::new();
        let mut page = self.root;
        let mut node = self.pager.read(page)?;
        while let Node::Internal { ref children, .. } = node {
            let idx = node.route(key);
            let child = children[idx];
            path.push((page, idx));
            page = child;
            node = self.pager.read(page)?;
        }
        let Node::Leaf { ref mut entries } = node else {
            unreachable!("descent ends at a leaf")
        };
        let Ok(i) = entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) else {
            return Ok(false);
        };
        entries.remove(i);
        self.entries -= 1;
        let len_after = node.encoded_len();
        self.pager.write(page, node)?;

        // Merge undersized pages upward.
        let mut cur_page = page;
        let mut cur_len = len_after;
        while cur_len < self.opts.page_bytes / self.opts.merge_divisor {
            let Some((ppage, idx)) = path.pop() else {
                // cur is the root.
                self.collapse_root()?;
                break;
            };
            let parent = self.pager.read(ppage)?;
            let Node::Internal {
                children,
                separators,
            } = parent
            else {
                unreachable!("path holds internal nodes")
            };
            // Pick a sibling: prefer the right one.
            let (left_idx, right_idx) = if idx + 1 < children.len() {
                (idx, idx + 1)
            } else {
                (idx - 1, idx)
            };
            let left_page = children[left_idx];
            let right_page = children[right_idx];
            let left = self.pager.read(left_page)?;
            let right = self.pager.read(right_page)?;
            let merged = match (left, right) {
                (Node::Leaf { entries: mut le }, Node::Leaf { entries: re }) => {
                    le.extend(re);
                    Node::Leaf { entries: le }
                }
                (
                    Node::Internal {
                        children: mut lc,
                        separators: mut ls,
                    },
                    Node::Internal {
                        children: rc,
                        separators: rs,
                    },
                ) => {
                    ls.push(separators[left_idx].clone());
                    ls.extend(rs);
                    lc.extend(rc);
                    Node::Internal {
                        children: lc,
                        separators: ls,
                    }
                }
                _ => unreachable!("siblings have equal height"),
            };
            if merged.encoded_len() > self.opts.page_bytes {
                break; // siblings too full to merge; accept the small page
            }
            self.stats.merges += 1;
            self.pager.write(left_page, merged)?;
            self.pager.free(right_page);
            let mut new_children = children;
            let mut new_separators = separators;
            new_children.remove(right_idx);
            new_separators.remove(left_idx);
            if new_children.len() == 1 && ppage == self.root {
                // Root collapsed to a single child.
                self.pager.free(ppage);
                self.root = new_children[0];
                break;
            }
            let pnode = Node::Internal {
                children: new_children,
                separators: new_separators,
            };
            cur_len = pnode.encoded_len();
            self.pager.write(ppage, pnode)?;
            cur_page = ppage;
        }
        let _ = cur_page;
        Ok(true)
    }

    fn collapse_root(&mut self) -> Result<()> {
        let node = self.pager.read(self.root)?;
        if let Node::Internal { children, .. } = node {
            if children.len() == 1 {
                self.pager.free(self.root);
                self.root = children[0];
            }
        }
        Ok(())
    }

    // ----- validation (tests and debugging) -----

    /// Walks the whole tree checking ordering and balance invariants;
    /// returns `(height, live entries)`. Panics on violation.
    pub fn verify(&mut self) -> (usize, u64) {
        if self.root == 0 {
            return (0, 0);
        }
        let (depth, count) = self.verify_node(self.root, None, None);
        assert_eq!(count, self.entries, "entry count drifted");
        (depth, count)
    }

    fn verify_node(
        &mut self,
        page: PageNo,
        low: Option<Vec<u8>>,
        high: Option<Vec<u8>>,
    ) -> (usize, u64) {
        let node = self.pager.read(page).expect("readable page");
        match node {
            Node::Leaf { entries } => {
                for w in entries.windows(2) {
                    assert!(w[0].0 < w[1].0, "leaf keys out of order");
                }
                for (k, _) in &entries {
                    if let Some(l) = &low {
                        assert!(k >= l, "leaf key below subtree bound");
                    }
                    if let Some(h) = &high {
                        assert!(k < h, "leaf key above subtree bound");
                    }
                }
                (1, entries.len() as u64)
            }
            Node::Internal {
                children,
                separators,
            } => {
                assert_eq!(children.len(), separators.len() + 1);
                for w in separators.windows(2) {
                    assert!(w[0] < w[1], "separators out of order");
                }
                let mut depth = None;
                let mut total = 0;
                for (i, &child) in children.iter().enumerate() {
                    let clow = if i == 0 {
                        low.clone()
                    } else {
                        Some(separators[i - 1].clone())
                    };
                    let chigh = if i == separators.len() {
                        high.clone()
                    } else {
                        Some(separators[i].clone())
                    };
                    let (d, c) = self.verify_node(child, clow, chigh);
                    match depth {
                        None => depth = Some(d),
                        Some(pd) => assert_eq!(pd, d, "unbalanced tree"),
                    }
                    total += c;
                }
                (depth.expect("internal node has children") + 1, total)
            }
        }
    }
}

/// Streaming cursor returned by [`BTreeDb::scan_iter`]: an in-order
/// walk holding only the internal-node path (child page numbers) and
/// the current leaf, reading pages through the cache as it advances.
pub struct BTreeScan<'a> {
    pager: &'a mut Pager,
    /// Page to descend into before yielding anything (`None` once the
    /// walk has started, or for an empty/zero-limit scan).
    descend_from: Option<PageNo>,
    /// Whether the next descent routes by `start` (first leaf only).
    first_descent: bool,
    /// `(children, next child index)` for each internal node on the path.
    stack: Vec<(Vec<PageNo>, usize)>,
    /// Remaining entries of the current leaf.
    leaf: std::vec::IntoIter<(Vec<u8>, Vec<u8>)>,
    start: Vec<u8>,
    end: Option<Vec<u8>>,
    remaining: usize,
}

impl BTreeScan<'_> {
    /// Walks from `page` down to a leaf, routing by `start` on the
    /// first descent and leftmost thereafter, and buffers the leaf's
    /// in-range entries.
    fn descend(&mut self, mut page: PageNo) -> Result<()> {
        loop {
            match self.pager.read(page)? {
                Node::Leaf { mut entries } => {
                    if self.first_descent {
                        let from =
                            entries.partition_point(|(k, _)| k.as_slice() < self.start.as_slice());
                        entries.drain(..from);
                    }
                    self.first_descent = false;
                    self.leaf = entries.into_iter();
                    return Ok(());
                }
                Node::Internal {
                    children,
                    separators,
                } => {
                    let idx = if self.first_descent {
                        separators.partition_point(|s| s.as_slice() <= self.start.as_slice())
                    } else {
                        0
                    };
                    page = children[idx];
                    self.stack.push((children, idx + 1));
                }
            }
        }
    }

    /// Advances to the next leaf via the saved path; `Ok(false)` when
    /// the walk is exhausted.
    fn next_leaf(&mut self) -> Result<bool> {
        while let Some((children, idx)) = self.stack.last_mut() {
            if *idx < children.len() {
                let page = children[*idx];
                *idx += 1;
                self.descend(page)?;
                return Ok(true);
            }
            self.stack.pop();
        }
        Ok(false)
    }
}

impl Iterator for BTreeScan<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        if let Some(root) = self.descend_from.take() {
            if let Err(e) = self.descend(root) {
                self.remaining = 0;
                return Some(Err(e));
            }
        }
        loop {
            if let Some((key, value)) = self.leaf.next() {
                if let Some(end) = &self.end {
                    if key.as_slice() >= end.as_slice() {
                        self.remaining = 0;
                        return None;
                    }
                }
                self.remaining -= 1;
                return Some(Ok((key, value)));
            }
            match self.next_leaf() {
                Ok(true) => {}
                Ok(false) => {
                    self.remaining = 0;
                    return None;
                }
                Err(e) => {
                    self.remaining = 0;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbench_ssd::{DeviceConfig, DeviceProfile, Ssd};
    use ptsbench_vfs::VfsOptions;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn db_on(bytes: u64) -> BTreeDb {
        let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), bytes));
        let vfs = Vfs::whole_device(ssd.into_shared(), VfsOptions::default());
        BTreeDb::open(vfs, BTreeOptions::small()).expect("open")
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:08}").into_bytes()
    }

    #[test]
    fn put_get_round_trip() {
        let mut db = db_on(32 << 20);
        db.put(b"a", b"1").expect("put");
        db.put(b"b", b"2").expect("put");
        assert_eq!(db.get(b"a").expect("get"), Some(b"1".to_vec()));
        assert_eq!(db.get(b"zz").expect("get"), None);
        db.put(b"a", b"updated").expect("put");
        assert_eq!(db.get(b"a").expect("get"), Some(b"updated".to_vec()));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn splits_keep_tree_valid() {
        let mut db = db_on(32 << 20);
        for i in 0..2000u32 {
            db.put(&key(i), &[i as u8; 64]).expect("put");
        }
        let (height, count) = db.verify();
        assert!(
            height >= 2,
            "2000 entries in 4K pages must split, height {height}"
        );
        assert_eq!(count, 2000);
        assert!(db.stats().splits > 0);
        for i in (0..2000).step_by(37) {
            assert_eq!(
                db.get(&key(i)).expect("get"),
                Some(vec![i as u8; 64]),
                "key {i}"
            );
        }
    }

    #[test]
    fn random_order_inserts() {
        let mut db = db_on(32 << 20);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut keys: Vec<u32> = (0..1500).collect();
        for i in (1..keys.len()).rev() {
            let j = rng.gen_range(0..=i);
            keys.swap(i, j);
        }
        for &i in &keys {
            db.put(&key(i), format!("v{i}").as_bytes()).expect("put");
        }
        db.verify();
        for i in (0..1500).step_by(13) {
            assert_eq!(
                db.get(&key(i)).expect("get"),
                Some(format!("v{i}").into_bytes())
            );
        }
    }

    #[test]
    fn deletes_and_merges() {
        let mut db = db_on(32 << 20);
        for i in 0..2000u32 {
            db.put(&key(i), &[1u8; 64]).expect("put");
        }
        for i in 0..1900u32 {
            assert!(db.delete(&key(i)).expect("delete"), "key {i} existed");
        }
        assert!(
            !db.delete(&key(0)).expect("delete"),
            "double delete is false"
        );
        assert_eq!(db.len(), 100);
        assert!(db.stats().merges > 0, "mass deletion must merge pages");
        db.verify();
        for i in 1900..2000 {
            assert!(db.get(&key(i)).expect("get").is_some());
        }
        assert!(db.get(&key(500)).expect("get").is_none());
    }

    #[test]
    fn delete_to_empty_and_reinsert() {
        let mut db = db_on(32 << 20);
        for i in 0..500u32 {
            db.put(&key(i), b"v").expect("put");
        }
        for i in 0..500u32 {
            db.delete(&key(i)).expect("delete");
        }
        assert_eq!(db.len(), 0);
        db.verify();
        db.put(b"again", b"works").expect("put");
        assert_eq!(db.get(b"again").expect("get"), Some(b"works".to_vec()));
    }

    #[test]
    fn model_check_against_btreemap() {
        use std::collections::BTreeMap;
        let mut db = db_on(64 << 20);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut rng = SmallRng::seed_from_u64(77);
        for step in 0..5000 {
            let i: u32 = rng.gen_range(0..400);
            let k = key(i);
            match rng.gen_range(0..10) {
                0..=5 => {
                    let v = format!("v{step}").into_bytes();
                    db.put(&k, &v).expect("put");
                    model.insert(k, v);
                }
                6..=7 => {
                    let got = db.delete(&k).expect("delete");
                    let expect = model.remove(&k).is_some();
                    assert_eq!(got, expect, "step {step}");
                }
                _ => {
                    assert_eq!(
                        db.get(&k).expect("get"),
                        model.get(&k).cloned(),
                        "step {step}"
                    );
                }
            }
        }
        db.verify();
        for i in 0..400u32 {
            let k = key(i);
            assert_eq!(
                db.get(&k).expect("get"),
                model.get(&k).cloned(),
                "final {i}"
            );
        }
        assert_eq!(db.len(), model.len() as u64);
    }

    #[test]
    fn scan_ranges() {
        let mut db = db_on(32 << 20);
        for i in 0..300u32 {
            db.put(&key(i), format!("v{i}").as_bytes()).expect("put");
        }
        let items = db.scan(&key(10), Some(&key(20)), 100).expect("scan");
        assert_eq!(items.len(), 10);
        assert_eq!(items[0].0, key(10));
        assert_eq!(items[9].0, key(19));
        for w in items.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // Limit.
        assert_eq!(db.scan(&key(0), None, 25).expect("scan").len(), 25);
        // Empty range.
        assert!(db.scan(&key(500), None, 10).expect("scan").is_empty());
    }

    #[test]
    fn checkpoints_happen_and_flush_dirty() {
        let mut db = db_on(32 << 20);
        for i in 0..3000u32 {
            db.put(&key(i), &[0u8; 128]).expect("put");
        }
        assert!(
            db.stats().checkpoints > 0,
            "byte threshold must trigger checkpoints"
        );
    }

    #[test]
    fn background_checkpoint_cleans_cache_and_truncates_journal() {
        use ptsbench_maint::MaintConfig;
        let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 32 << 20));
        let vfs = Vfs::whole_device(ssd.into_shared(), VfsOptions::default());
        let opts = BTreeOptions {
            maint: MaintConfig::enabled(),
            ..BTreeOptions::small()
        };
        let mut db = BTreeDb::open(vfs.clone(), opts).expect("open");
        for i in 0..3000u32 {
            db.put(&key(i), &[7u8; 128]).expect("put");
            while db.run_maintenance_slice().expect("slice") {}
        }
        db.drain_maintenance().expect("drain");
        let stats = db.maint_stats().expect("maintenance stats");
        assert!(stats.jobs > 0, "byte threshold must schedule checkpoints");
        assert_eq!(stats.jobs, stats.installs, "exactly-once installs");
        assert!(stats.slices >= stats.jobs, "jobs run in bounded slices");
        assert!(stats.bytes_written > 0, "write-backs go through the budget");
        assert_eq!(
            db.stats().checkpoints,
            stats.jobs,
            "every background install is a checkpoint"
        );
        db.verify();
        for i in (0..3000).step_by(97) {
            assert_eq!(db.get(&key(i)).expect("get"), Some(vec![7u8; 128]));
        }

        // The drained state recovers: the last install's metadata plus
        // the journal tail reproduce the tree.
        drop(db);
        let opts = BTreeOptions {
            maint: MaintConfig::enabled(),
            ..BTreeOptions::small()
        };
        let mut db = BTreeDb::recover(vfs, opts).expect("recover");
        assert_eq!(db.len(), 3000);
        for i in (0..3000).step_by(131) {
            assert_eq!(db.get(&key(i)).expect("get"), Some(vec![7u8; 128]));
        }
    }

    #[test]
    fn oversized_pair_rejected() {
        let mut db = db_on(32 << 20);
        let err = db.put(b"k", &vec![0u8; 8192]).expect_err("too large");
        assert!(matches!(err, BTreeError::PairTooLarge { .. }));
    }

    #[test]
    fn stable_lba_footprint_under_updates() {
        // The Fig 4 signature: sustained updates of existing keys must
        // not grow the set of device pages the tree touches.
        let mut db = db_on(64 << 20);
        for i in 0..1000u32 {
            db.put(&key(i), &[0u8; 64]).expect("put");
        }
        db.checkpoint().expect("ckpt");
        let mapped_before = db.vfs().ssd().lock().mapped_pages();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..5000 {
            let i: u32 = rng.gen_range(0..1000);
            db.put(&key(i), &[1u8; 64]).expect("put");
        }
        db.checkpoint().expect("ckpt");
        let mapped_after = db.vfs().ssd().lock().mapped_pages();
        // Journal rotation adds a little churn; the tree itself is stable.
        assert!(
            mapped_after <= mapped_before + 64,
            "LBA footprint grew: {mapped_before} -> {mapped_after}"
        );
        db.verify();
    }
}
