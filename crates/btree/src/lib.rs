//! # ptsbench-btree — an on-disk B+Tree key-value store
//!
//! A from-scratch paged B+Tree in the architecture of WiredTiger (the
//! paper's B+Tree representative, §2.1.2): key-value pairs live in large
//! leaf pages (32 KiB by default), internal pages route lookups, a page
//! cache holds hot pages in memory and writes dirty pages back **in
//! place**, and a write-ahead log plus periodic checkpoints provide
//! durability.
//!
//! The two behaviours the paper's analysis hinges on fall out of this
//! design naturally:
//!
//! * **Stable LBA footprint** (Fig 4): pages are rewritten at their
//!   original file offsets, so the device sees writes confined to the
//!   LBAs holding the dataset (~50% of the drive in the default
//!   workload) — which acts as implicit over-provisioning on a trimmed
//!   drive and explains the trimmed-vs-preconditioned gap of Pitfall 3.
//! * **Stable WA-A** (Fig 2d): every update dirties one leaf; the extra
//!   write volume per update does not change over time.
//!
//! ```
//! use ptsbench_btree::{BTreeDb, BTreeOptions};
//! use ptsbench_ssd::{DeviceConfig, DeviceProfile, Ssd};
//! use ptsbench_vfs::{Vfs, VfsOptions};
//!
//! let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 64 << 20));
//! let vfs = Vfs::whole_device(ssd.into_shared(), VfsOptions::default());
//! let mut db = BTreeDb::open(vfs, BTreeOptions::small()).unwrap();
//! db.put(b"hello", b"world").unwrap();
//! assert_eq!(db.get(b"hello").unwrap().as_deref(), Some(&b"world"[..]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod db;
pub mod log;
pub mod node;
pub mod options;
pub mod pager;

pub use db::{BTreeDb, BTreeScan, BTreeStats};
pub use options::BTreeOptions;

/// Errors surfaced by the B+Tree engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BTreeError {
    /// Underlying filesystem/device error.
    Vfs(ptsbench_vfs::VfsError),
    /// On-disk page failed validation.
    Corruption(String),
    /// A single key-value pair larger than a page cannot be stored.
    PairTooLarge {
        /// Encoded pair size.
        pair_bytes: usize,
        /// Page capacity.
        page_bytes: usize,
    },
}

impl From<ptsbench_vfs::VfsError> for BTreeError {
    fn from(e: ptsbench_vfs::VfsError) -> Self {
        BTreeError::Vfs(e)
    }
}

impl BTreeError {
    /// Whether this is the out-of-space condition.
    pub fn is_out_of_space(&self) -> bool {
        matches!(
            self,
            BTreeError::Vfs(ptsbench_vfs::VfsError::NoSpace { .. })
        )
    }
}

impl std::fmt::Display for BTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BTreeError::Vfs(e) => write!(f, "filesystem error: {e}"),
            BTreeError::Corruption(msg) => write!(f, "corruption: {msg}"),
            BTreeError::PairTooLarge {
                pair_bytes,
                page_bytes,
            } => {
                write!(
                    f,
                    "key-value pair of {pair_bytes} bytes exceeds page capacity {page_bytes}"
                )
            }
        }
    }
}

impl std::error::Error for BTreeError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, BTreeError>;

/// Page number within the B+Tree file (page 0 is the metadata page).
pub type PageNo = u64;
