//! Crash-recovery tests: a B+Tree abandoned without clean shutdown is
//! reconstructed from its last checkpoint plus the journal.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ptsbench_btree::{BTreeDb, BTreeError, BTreeOptions};
use ptsbench_ssd::{DeviceConfig, DeviceProfile, Ssd};
use ptsbench_vfs::{Vfs, VfsOptions};

fn vfs() -> Vfs {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 48 << 20));
    Vfs::whole_device(ssd.into_shared(), VfsOptions::default())
}

fn key(i: u32) -> Vec<u8> {
    format!("key{i:08}").into_bytes()
}

#[test]
fn recovers_checkpointed_state_exactly() {
    let v = vfs();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    {
        let mut db = BTreeDb::open(v.clone(), BTreeOptions::small()).expect("open");
        let mut rng = SmallRng::seed_from_u64(21);
        for step in 0..3000u32 {
            let i = rng.gen_range(0..700);
            if rng.gen_bool(0.8) {
                let val = format!("v{step}").into_bytes();
                db.put(&key(i), &val).expect("put");
                model.insert(key(i), val);
            } else {
                db.delete(&key(i)).expect("delete");
                model.remove(&key(i));
            }
        }
        db.checkpoint().expect("checkpoint");
        // Crash: dropped without clean shutdown.
    }
    let mut recovered = BTreeDb::recover(v, BTreeOptions::small()).expect("recover");
    let (_, count) = recovered.verify();
    assert_eq!(count, model.len() as u64);
    for (k, val) in &model {
        let got = recovered.get(k).expect("get");
        assert_eq!(got.as_ref(), Some(val), "lost {k:?}");
    }
}

#[test]
fn journal_tail_survives_past_checkpoint() {
    let v = vfs();
    {
        let mut db = BTreeDb::open(v.clone(), BTreeOptions::small()).expect("open");
        for i in 0..300u32 {
            db.put(&key(i), b"checkpointed").expect("put");
        }
        db.checkpoint().expect("checkpoint");
        for i in 300..360u32 {
            db.put(&key(i), b"journal-only").expect("put");
        }
        db.delete(&key(7)).expect("delete");
        db.sync_journal().expect("sync");
    }
    let mut recovered = BTreeDb::recover(v, BTreeOptions::small()).expect("recover");
    assert_eq!(
        recovered.get(&key(0)).expect("get"),
        Some(b"checkpointed".to_vec())
    );
    assert_eq!(
        recovered.get(&key(350)).expect("get"),
        Some(b"journal-only".to_vec()),
        "journal tail must survive"
    );
    assert_eq!(
        recovered.get(&key(7)).expect("get"),
        None,
        "journaled delete survives"
    );
    recovered.verify();
}

#[test]
fn recovered_tree_reuses_unreachable_pages() {
    let v = vfs();
    let pages_before;
    {
        let mut db = BTreeDb::open(v.clone(), BTreeOptions::small()).expect("open");
        for i in 0..2000u32 {
            db.put(&key(i), &[1u8; 64]).expect("put");
        }
        db.checkpoint().expect("checkpoint");
        // Mass deletion frees pages; crash before the next checkpoint
        // records them.
        for i in 0..1900u32 {
            db.delete(&key(i)).expect("delete");
        }
        db.sync_journal().expect("sync");
        pages_before = db.pager_stats().allocations;
    }
    let mut recovered = BTreeDb::recover(v, BTreeOptions::small()).expect("recover");
    recovered.verify();
    // Refilling must reuse reclaimed pages rather than ballooning the file.
    for i in 0..1900u32 {
        recovered.put(&key(i), &[2u8; 64]).expect("put");
    }
    recovered.verify();
    assert!(recovered.pager_stats().allocations <= pages_before + 50);
}

#[test]
fn recovery_without_checkpoint_fails_cleanly() {
    let v = vfs();
    {
        // Open but never checkpoint: the meta page has no magic.
        let mut db = BTreeDb::open(v.clone(), BTreeOptions::small()).expect("open");
        db.put(b"k", b"v").expect("put");
    }
    assert!(matches!(
        BTreeDb::recover(v, BTreeOptions::small()),
        Err(BTreeError::Corruption(_))
    ));
}

#[test]
fn repeated_recovery_is_stable() {
    let v = vfs();
    {
        let mut db = BTreeDb::open(v.clone(), BTreeOptions::small()).expect("open");
        for i in 0..1200u32 {
            db.put(&key(i), format!("v{i}").as_bytes()).expect("put");
        }
        db.checkpoint().expect("checkpoint");
    }
    for round in 0..3 {
        let mut db = BTreeDb::recover(v.clone(), BTreeOptions::small()).expect("recover");
        db.verify();
        for i in (0..1200u32).step_by(131) {
            assert_eq!(
                db.get(&key(i)).expect("get"),
                Some(format!("v{i}").into_bytes()),
                "round {round}, key {i}"
            );
        }
    }
}
