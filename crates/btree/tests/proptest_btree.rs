//! Property-based tests of the B+Tree engine: arbitrary operation
//! sequences agree with a `BTreeMap` model, and the structural
//! invariants (ordering, balance, entry counts) hold throughout.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ptsbench_btree::node::Node;
use ptsbench_btree::{BTreeDb, BTreeOptions};
use ptsbench_ssd::{DeviceConfig, DeviceProfile, Ssd};
use ptsbench_vfs::{Vfs, VfsOptions};

#[derive(Debug, Clone)]
enum KvOp {
    Put(u16, u16),
    Delete(u16),
    Get(u16),
    Scan(u16, u8),
    Checkpoint,
}

fn kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        6 => (0..400u16, 0..500u16).prop_map(|(k, v)| KvOp::Put(k, v)),
        3 => (0..400u16).prop_map(KvOp::Delete),
        3 => (0..400u16).prop_map(KvOp::Get),
        1 => (0..400u16, 1..20u8).prop_map(|(s, n)| KvOp::Scan(s, n)),
        1 => Just(KvOp::Checkpoint),
    ]
}

fn key(i: u16) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

fn fresh_db() -> BTreeDb {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 48 << 20));
    let vfs = Vfs::whole_device(ssd.into_shared(), VfsOptions::default());
    BTreeDb::open(vfs, BTreeOptions::small()).expect("open")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tree agrees with a BTreeMap model and stays balanced.
    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(kv_op(), 1..300)) {
        let mut db = fresh_db();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (step, op) in ops.iter().enumerate() {
            match op {
                KvOp::Put(k, v) => {
                    let k = key(*k);
                    let v = format!("v{v}-{step}").into_bytes();
                    db.put(&k, &v).expect("put");
                    model.insert(k, v);
                }
                KvOp::Delete(k) => {
                    let k = key(*k);
                    let existed = db.delete(&k).expect("delete");
                    prop_assert_eq!(existed, model.remove(&k).is_some());
                }
                KvOp::Get(k) => {
                    let k = key(*k);
                    prop_assert_eq!(db.get(&k).expect("get"), model.get(&k).cloned());
                }
                KvOp::Scan(s, n) => {
                    let start = key(*s);
                    let got = db.scan(&start, None, *n as usize).expect("scan");
                    let expect: Vec<_> = model
                        .range(start..)
                        .take(*n as usize)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, expect, "scan mismatch at step {}", step);
                }
                KvOp::Checkpoint => db.checkpoint().expect("checkpoint"),
            }
        }
        let (_, count) = db.verify();
        prop_assert_eq!(count, model.len() as u64);
        for (k, v) in &model {
            let got = db.get(k).expect("get");
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }

    /// Node encoding round-trips arbitrary leaves and internals.
    #[test]
    fn node_encoding_round_trips(
        leaf_entries in proptest::collection::btree_map(
            proptest::collection::vec(any::<u8>(), 1..20),
            proptest::collection::vec(any::<u8>(), 0..100),
            0..50,
        ),
        children in proptest::collection::vec(1u64..1_000_000, 1..30),
    ) {
        let leaf = Node::Leaf {
            entries: leaf_entries.into_iter().collect(),
        };
        let mut buf = Vec::new();
        leaf.encode(&mut buf);
        prop_assert_eq!(buf.len(), leaf.encoded_len());
        prop_assert_eq!(Node::decode(&buf).expect("decode leaf"), leaf);

        // Internal node: n children need n-1 strictly increasing keys.
        let separators: Vec<Vec<u8>> = (0..children.len() - 1)
            .map(|i| format!("sep{i:06}").into_bytes())
            .collect();
        let internal = Node::Internal { children, separators };
        internal.encode(&mut buf);
        prop_assert_eq!(buf.len(), internal.encoded_len());
        prop_assert_eq!(Node::decode(&buf).expect("decode internal"), internal);
    }

    /// Splitting an oversized leaf preserves entries and ordering
    /// regardless of the entry-size distribution.
    #[test]
    fn leaf_split_preserves_entries(
        sizes in proptest::collection::vec(1usize..400, 2..40),
    ) {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (format!("k{i:06}").into_bytes(), vec![0u8; s]))
            .collect();
        let total = entries.len();
        let mut node = Node::Leaf { entries };
        let (sep, right) = node.split();
        let (Node::Leaf { entries: left }, Node::Leaf { entries: right }) = (&node, &right) else {
            panic!("leaf split must produce leaves");
        };
        prop_assert_eq!(left.len() + right.len(), total);
        prop_assert!(!left.is_empty() && !right.is_empty());
        prop_assert_eq!(&right[0].0, &sep);
        prop_assert!(left.last().expect("non-empty").0 < sep);
    }
}
