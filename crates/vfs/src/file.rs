//! File representation: contents plus the LBA extents backing them.

use ptsbench_ssd::{Lpn, LpnRange, Ns};

use crate::alloc::Extent;

/// An opaque handle to an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub(crate) u64);

/// In-memory state of one file.
///
/// Contents live here (the device models *when*, the filesystem owns
/// *what*); `extents` record which logical pages back which file pages,
/// so page-aligned overwrites are in-place at the device level.
#[derive(Debug)]
pub(crate) struct FileNode {
    pub name: String,
    pub data: Vec<u8>,
    /// Ordered extents; file page `i` lives in the extent covering the
    /// `i`-th page slot.
    pub extents: Vec<Extent>,
    /// `cum_pages[i]` = total pages in `extents[..=i]` (binary-search index).
    pub cum_pages: Vec<u64>,
    /// Latest media-durability time across all writes to this file.
    pub durable_at: Ns,
}

impl FileNode {
    pub fn new(name: String) -> Self {
        Self {
            name,
            data: Vec::new(),
            extents: Vec::new(),
            cum_pages: Vec::new(),
            durable_at: 0,
        }
    }

    /// Total pages currently allocated to the file.
    pub fn total_pages(&self) -> u64 {
        self.cum_pages.last().copied().unwrap_or(0)
    }

    /// Appends freshly allocated extents.
    pub fn push_extents(&mut self, extents: Vec<Extent>) {
        for e in extents {
            let base = self.total_pages();
            self.extents.push(e);
            self.cum_pages.push(base + e.pages);
        }
    }

    /// Maps a file-relative page index to its logical page number.
    ///
    /// # Panics
    /// Panics if the page is beyond the allocated extents.
    pub fn page_to_lpn(&self, file_page: u64) -> Lpn {
        let idx = self.cum_pages.partition_point(|&c| c <= file_page);
        assert!(
            idx < self.extents.len(),
            "file page {file_page} beyond allocation"
        );
        let prior = if idx == 0 { 0 } else { self.cum_pages[idx - 1] };
        self.extents[idx].start + (file_page - prior)
    }

    /// Decomposes a file-relative page range into contiguous device
    /// ranges (one per extent crossing).
    pub fn runs(&self, first_page: u64, count: u64) -> Vec<LpnRange> {
        let mut out = Vec::new();
        if count == 0 {
            return out;
        }
        let mut page = first_page;
        let end = first_page + count;
        while page < end {
            let idx = self.cum_pages.partition_point(|&c| c <= page);
            assert!(
                idx < self.extents.len(),
                "file page {page} beyond allocation"
            );
            let prior = if idx == 0 { 0 } else { self.cum_pages[idx - 1] };
            let offset_in_extent = page - prior;
            let extent = self.extents[idx];
            let avail = extent.pages - offset_in_extent;
            let take = avail.min(end - page);
            let start = extent.start + offset_in_extent;
            out.push(LpnRange::new(start, start + take));
            page += take;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_with(extents: &[(u64, u64)]) -> FileNode {
        let mut n = FileNode::new("t".into());
        n.push_extents(
            extents
                .iter()
                .map(|&(start, pages)| Extent { start, pages })
                .collect(),
        );
        n
    }

    #[test]
    fn page_mapping_across_extents() {
        let n = node_with(&[(100, 4), (200, 4)]);
        assert_eq!(n.total_pages(), 8);
        assert_eq!(n.page_to_lpn(0), 100);
        assert_eq!(n.page_to_lpn(3), 103);
        assert_eq!(n.page_to_lpn(4), 200);
        assert_eq!(n.page_to_lpn(7), 203);
    }

    #[test]
    fn runs_split_at_extent_boundaries() {
        let n = node_with(&[(100, 4), (200, 4)]);
        let runs = n.runs(2, 4);
        assert_eq!(runs, vec![LpnRange::new(102, 104), LpnRange::new(200, 202)]);
        assert_eq!(n.runs(0, 0), vec![]);
        assert_eq!(n.runs(5, 2), vec![LpnRange::new(201, 203)]);
    }

    #[test]
    #[should_panic(expected = "beyond allocation")]
    fn out_of_range_page_panics() {
        let n = node_with(&[(100, 4)]);
        n.page_to_lpn(4);
    }
}
