//! Extent allocation over a partition's LBA space.
//!
//! The allocator hands out runs of logical pages ([`Extent`]s) and takes
//! them back on file deletion, coalescing adjacent free runs. The policy
//! determines *where* new data lands, which in turn determines the LBA
//! footprint the device sees — the crux of the paper's Figure 4:
//!
//! * [`AllocPolicy::NextFit`] keeps a roving cursor, so a workload that
//!   constantly creates and deletes large files (LSM compaction) cycles
//!   through the entire partition, touching every LBA.
//! * [`AllocPolicy::FirstFit`] reuses the lowest free space first, so the
//!   same workload keeps rewriting a compact LBA prefix.
//! * [`AllocPolicy::BestFit`] minimizes fragmentation for mixed sizes.

use std::collections::BTreeMap;

use ptsbench_ssd::{Lpn, LpnRange};

use crate::error::VfsError;

/// A contiguous run of logical pages owned by a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First logical page of the run.
    pub start: Lpn,
    /// Number of pages in the run.
    pub pages: u64,
}

impl Extent {
    /// One past the last page.
    pub fn end(&self) -> Lpn {
        self.start + self.pages
    }

    /// The run as an [`LpnRange`].
    pub fn range(&self) -> LpnRange {
        LpnRange::new(self.start, self.end())
    }
}

/// Free-space placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Roving cursor (aged-ext4-like; the default).
    #[default]
    NextFit,
    /// Lowest free address first.
    FirstFit,
    /// Smallest free run that fits (fewest leftovers).
    BestFit,
}

/// Free-extent manager for one partition.
#[derive(Debug)]
pub struct ExtentAllocator {
    range: LpnRange,
    /// Free runs keyed by start page; values are lengths. Invariant:
    /// non-overlapping, within `range`, never adjacent (always coalesced).
    free: BTreeMap<Lpn, u64>,
    free_pages: u64,
    policy: AllocPolicy,
    cursor: Lpn,
}

impl ExtentAllocator {
    /// An allocator with the whole `range` free.
    pub fn new(range: LpnRange, policy: AllocPolicy) -> Self {
        let mut free = BTreeMap::new();
        if !range.is_empty() {
            free.insert(range.start, range.len());
        }
        Self {
            free,
            free_pages: range.len(),
            policy,
            cursor: range.start,
            range,
        }
    }

    /// The partition this allocator manages.
    pub fn partition(&self) -> LpnRange {
        self.range
    }

    /// Pages currently free.
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Pages currently allocated.
    pub fn used_pages(&self) -> u64 {
        self.range.len() - self.free_pages
    }

    /// Snapshot of the free runs (for `fstrim` and tests).
    pub fn free_runs(&self) -> Vec<Extent> {
        self.free
            .iter()
            .map(|(&start, &pages)| Extent { start, pages })
            .collect()
    }

    /// Allocates `pages` pages, possibly split across several extents.
    /// On failure nothing is allocated.
    pub fn alloc(&mut self, pages: u64) -> Result<Vec<Extent>, VfsError> {
        if pages == 0 {
            return Ok(Vec::new());
        }
        if pages > self.free_pages {
            return Err(VfsError::NoSpace {
                requested_pages: pages,
                available_pages: self.free_pages,
            });
        }
        let mut out = Vec::new();
        let mut remaining = pages;
        while remaining > 0 {
            let (run_start, run_len, alloc_start) = self
                .pick_run(remaining)
                .expect("free_pages accounting guarantees a run");
            let head = alloc_start - run_start;
            let take = remaining.min(run_len - head);
            self.free.remove(&run_start);
            if head > 0 {
                self.free.insert(run_start, head);
            }
            if head + take < run_len {
                self.free.insert(alloc_start + take, run_len - head - take);
            }
            self.free_pages -= take;
            self.cursor = alloc_start + take;
            out.push(Extent {
                start: alloc_start,
                pages: take,
            });
            remaining -= take;
        }
        Ok(out)
    }

    /// Returns an extent to the free pool, coalescing neighbours.
    ///
    /// # Panics
    /// Panics if the extent overlaps free space or lies outside the
    /// partition (double-free / corruption guard).
    pub fn release(&mut self, extent: Extent) {
        assert!(extent.pages > 0, "releasing empty extent");
        assert!(
            extent.start >= self.range.start && extent.end() <= self.range.end,
            "extent {extent:?} outside partition {:?}",
            self.range
        );
        // Overlap guards against double-free.
        if let Some((&prev_start, &prev_len)) = self.free.range(..=extent.start).next_back() {
            assert!(
                prev_start + prev_len <= extent.start,
                "double free: {extent:?} overlaps free run at {prev_start}+{prev_len}"
            );
        }
        if let Some((&next_start, _)) = self.free.range(extent.start..).next() {
            assert!(
                extent.end() <= next_start,
                "double free: {extent:?} overlaps free run at {next_start}"
            );
        }

        let mut start = extent.start;
        let mut len = extent.pages;
        // Coalesce with predecessor.
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        // Coalesce with successor.
        if let Some((&next_start, &next_len)) = self.free.range(start..).next() {
            if start + len == next_start {
                self.free.remove(&next_start);
                len += next_len;
            }
        }
        self.free.insert(start, len);
        self.free_pages += extent.pages;
    }

    /// Chooses a free run; returns `(run_start, run_len, alloc_start)`
    /// where `alloc_start` may point into the middle of the run (NextFit
    /// resuming at its cursor).
    fn pick_run(&self, want: u64) -> Option<(Lpn, u64, Lpn)> {
        match self.policy {
            AllocPolicy::FirstFit => self.free.iter().next().map(|(&s, &l)| (s, l, s)),
            AllocPolicy::NextFit => {
                // A run containing the cursor resumes exactly there.
                if let Some((&s, &l)) = self.free.range(..=self.cursor).next_back() {
                    if s + l > self.cursor {
                        return Some((s, l, self.cursor.max(s)));
                    }
                }
                self.free
                    .range(self.cursor..)
                    .next()
                    .or_else(|| self.free.iter().next())
                    .map(|(&s, &l)| (s, l, s))
            }
            AllocPolicy::BestFit => {
                // Smallest run >= want, else the largest run.
                let mut best_fit: Option<(Lpn, u64)> = None;
                let mut largest: Option<(Lpn, u64)> = None;
                for (&s, &l) in &self.free {
                    if l >= want && best_fit.is_none_or(|(_, bl)| l < bl) {
                        best_fit = Some((s, l));
                    }
                    if largest.is_none_or(|(_, ll)| l > ll) {
                        largest = Some((s, l));
                    }
                }
                best_fit.or(largest).map(|(s, l)| (s, l, s))
            }
        }
    }

    /// Exhaustively validates allocator invariants (tests).
    pub fn check_invariants(&self) {
        let mut total = 0;
        let mut prev_end: Option<Lpn> = None;
        for (&start, &len) in &self.free {
            assert!(len > 0, "empty free run at {start}");
            assert!(
                start >= self.range.start && start + len <= self.range.end,
                "run out of range"
            );
            if let Some(pe) = prev_end {
                assert!(start > pe, "overlapping free runs");
                assert!(start != pe, "uncoalesced adjacent runs");
            }
            prev_end = Some(start + len);
            total += len;
        }
        assert_eq!(total, self.free_pages, "free page accounting drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(policy: AllocPolicy) -> ExtentAllocator {
        ExtentAllocator::new(LpnRange::new(0, 100), policy)
    }

    #[test]
    fn alloc_and_release_round_trip() {
        let mut a = alloc(AllocPolicy::FirstFit);
        let e = a.alloc(10).expect("alloc");
        assert_eq!(
            e,
            vec![Extent {
                start: 0,
                pages: 10
            }]
        );
        assert_eq!(a.free_pages(), 90);
        a.release(e[0]);
        assert_eq!(a.free_pages(), 100);
        assert_eq!(
            a.free_runs().len(),
            1,
            "release must coalesce back to one run"
        );
        a.check_invariants();
    }

    #[test]
    fn next_fit_cycles_through_space() {
        let mut a = alloc(AllocPolicy::NextFit);
        let e1 = a.alloc(40).expect("alloc")[0];
        a.release(e1);
        let e2 = a.alloc(40).expect("alloc")[0];
        assert_eq!(e2.start, 40, "NextFit must move past released space");
        a.release(e2);
        let e3 = a.alloc(40).expect("alloc")[0];
        assert_eq!(e3.start, 80, "NextFit keeps roving");
        assert_eq!(e3.pages, 20, "wraps after exhausting the tail");
        a.check_invariants();
    }

    #[test]
    fn first_fit_reuses_low_space() {
        let mut a = alloc(AllocPolicy::FirstFit);
        let e1 = a.alloc(40).expect("alloc")[0];
        a.release(e1);
        let e2 = a.alloc(40).expect("alloc")[0];
        assert_eq!(e2.start, 0, "FirstFit must reuse the lowest space");
    }

    #[test]
    fn best_fit_prefers_snug_run() {
        let mut a = alloc(AllocPolicy::BestFit);
        // Carve free space into runs of 30 (at 0) and 10 (at 90) by
        // allocating the middle.
        let all = a.alloc(100).expect("alloc");
        a.release(Extent {
            start: 0,
            pages: 30,
        });
        a.release(Extent {
            start: 90,
            pages: 10,
        });
        let got = a.alloc(8).expect("alloc");
        assert_eq!(got[0].start, 90, "BestFit should pick the 10-page run");
        let _ = all;
        a.check_invariants();
    }

    #[test]
    fn fragmented_alloc_spans_runs() {
        let mut a = alloc(AllocPolicy::FirstFit);
        let _hold = a.alloc(100).expect("alloc");
        a.release(Extent {
            start: 10,
            pages: 5,
        });
        a.release(Extent {
            start: 50,
            pages: 5,
        });
        let got = a.alloc(8).expect("alloc");
        assert_eq!(got.len(), 2, "must split across free runs");
        assert_eq!(got.iter().map(|e| e.pages).sum::<u64>(), 8);
        a.check_invariants();
    }

    #[test]
    fn no_space_is_clean_failure() {
        let mut a = alloc(AllocPolicy::FirstFit);
        let _e = a.alloc(95).expect("alloc");
        let err = a.alloc(10).expect_err("must fail");
        assert_eq!(
            err,
            VfsError::NoSpace {
                requested_pages: 10,
                available_pages: 5
            }
        );
        // Nothing leaked.
        assert_eq!(a.free_pages(), 5);
        a.check_invariants();
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = alloc(AllocPolicy::FirstFit);
        let e = a.alloc(10).expect("alloc")[0];
        a.release(e);
        a.release(e);
    }

    #[test]
    fn zero_alloc_is_empty() {
        let mut a = alloc(AllocPolicy::NextFit);
        assert!(a.alloc(0).expect("alloc").is_empty());
    }
}
