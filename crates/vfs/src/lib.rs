//! # ptsbench-vfs — a filesystem substrate over the simulated SSD
//!
//! The paper runs RocksDB and WiredTiger on an ext4 filesystem mounted
//! with `nodiscard` (§3.5): deleting a file frees its blocks for reuse by
//! the allocator but sends **no TRIM** to the drive, so the device keeps
//! treating those LBAs as live data. This crate reproduces that layer:
//!
//! * **Extent-based files** ([`file`](mod@file)) — a file is a byte vector plus an
//!   ordered list of LBA extents; page-aligned overwrites hit the *same*
//!   LBAs (the in-place behaviour a B+Tree relies on), appends allocate
//!   new extents.
//! * **Allocation policies** ([`alloc`]) — `NextFit` (default; cycles the
//!   partition like an aged filesystem, which is why LSM file churn
//!   touches the whole LBA space in the paper's Figure 4), `FirstFit`,
//!   and `BestFit`.
//! * **`nodiscard` semantics** — deletes return extents to the allocator
//!   without trimming; an explicit [`Vfs::trim_free_space`] models
//!   `fstrim`, and discard-on-delete can be enabled to model `-o discard`.
//! * **Partitions** ([`Vfs::new`] takes an LPN range) — reserving part of
//!   the device as an untouched partition is exactly the paper's software
//!   over-provisioning knob (Pitfall 6).
//!
//! All I/O has direct-I/O semantics: writes block the simulated clock
//! until cache admission, reads until media completion, and
//! [`Vfs::fsync`] until the file's data is durable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod error;
pub mod file;
pub mod fs;
pub mod trace;

pub use alloc::{AllocPolicy, Extent, ExtentAllocator};
pub use error::VfsError;
pub use file::FileId;
pub use fs::{AsyncRead, FsStats, Vfs, VfsOptions};
pub use trace::{CauseScope, TraceHandle};
// Re-exported so engines can drive the asynchronous submission path
// without depending on `ptsbench-ssd` directly.
pub use ptsbench_ssd::{
    Cause, CauseStats, IoCmd, IoCompletion, IoDepthStats, IoQueue, IoToken, SharedIoQueue, SpanId,
    Tracer,
};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, VfsError>;
