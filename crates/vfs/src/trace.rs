//! Engine-side tracing convenience: one handle bundling the tracer,
//! the clock and the device's cause stack.
//!
//! Engines record phase spans (`lsm.flush`, `btree.page_walk`, ...) and
//! enter cause scopes (so device traffic below them is attributed to
//! `Compaction`, `Wal`, ...). Both need the device clock and the shared
//! device handle; [`TraceHandle`] captures them once at engine build so
//! the hot paths pay a single `is_on` branch when tracing is off.

use std::sync::Arc;

use ptsbench_ssd::{Cause, SharedSsd, SimClock, SpanId, Tracer};

use crate::fs::Vfs;

/// RAII cause scope: pushes `cause` onto the device's cause stack on
/// construction and pops it on drop. The inactive scope (tracing off)
/// touches nothing.
#[derive(Debug)]
pub struct CauseScope {
    ssd: Option<SharedSsd>,
}

impl CauseScope {
    /// A scope that does nothing (tracing off).
    pub fn inactive() -> Self {
        Self { ssd: None }
    }

    /// Enters `cause` on the device's cause stack until drop.
    pub fn enter(ssd: SharedSsd, cause: Cause) -> Self {
        ssd.lock().push_cause(cause);
        Self { ssd: Some(ssd) }
    }
}

impl Drop for CauseScope {
    fn drop(&mut self) {
        if let Some(ssd) = &self.ssd {
            ssd.lock().pop_cause();
        }
    }
}

/// The tracing context an engine holds: tracer + clock + device.
///
/// Built from the engine's [`Vfs`] at open time. When `enabled` is
/// false (or no tracer is attached to the device) every method is a
/// no-op branch.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    tracer: Tracer,
    clock: Arc<SimClock>,
    ssd: SharedSsd,
}

impl TraceHandle {
    /// Captures the tracing context of `vfs`'s device. With
    /// `enabled = false` the handle is inert even if the device has a
    /// tracer attached (the engine-level opt-out).
    pub fn from_vfs(vfs: &Vfs, enabled: bool) -> Self {
        Self {
            tracer: if enabled { vfs.tracer() } else { Tracer::off() },
            clock: vfs.clock(),
            ssd: vfs.ssd(),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_on(&self) -> bool {
        self.tracer.is_on()
    }

    /// The underlying tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Opens a phase span at the current virtual time.
    pub fn begin(&self, name: &'static str, cause: Cause) -> SpanId {
        if !self.tracer.is_on() {
            return SpanId::none();
        }
        self.tracer.begin(name, cause, self.clock.now())
    }

    /// Closes a phase span at the current virtual time.
    pub fn end(&self, id: SpanId) {
        if self.tracer.is_on() {
            self.tracer.end(id, self.clock.now());
        }
    }

    /// Records a completed leaf span at the current virtual time
    /// (zero-duration marker, e.g. a cache hit).
    pub fn mark(&self, name: &'static str, cause: Cause) {
        if self.tracer.is_on() {
            let now = self.clock.now();
            self.tracer.leaf(name, cause, now, now);
        }
    }

    /// The device's innermost active cause ([`Cause::Other`] when off
    /// or outside any scope) — tag spans with the provenance of the
    /// work in progress.
    pub fn current_cause(&self) -> Cause {
        if self.tracer.is_on() {
            self.ssd.lock().current_cause()
        } else {
            Cause::Other
        }
    }

    /// Enters a cause scope on the device (no-op scope when off).
    pub fn cause(&self, cause: Cause) -> CauseScope {
        if self.tracer.is_on() {
            CauseScope::enter(Arc::clone(&self.ssd), cause)
        } else {
            CauseScope::inactive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::VfsOptions;
    use ptsbench_ssd::{DeviceConfig, DeviceProfile, Ssd};

    fn traced_fs() -> Vfs {
        let mut ssd = Ssd::new(DeviceConfig::from_profile(
            DeviceProfile::ssd1(),
            16 * 1024 * 1024,
        ));
        ssd.attach_tracer(Tracer::recording());
        Vfs::whole_device(ssd.into_shared(), VfsOptions::default())
    }

    #[test]
    fn disabled_handle_is_inert_even_with_device_tracer() {
        let v = traced_fs();
        let h = TraceHandle::from_vfs(&v, false);
        assert!(!h.is_on());
        let id = h.begin("x", Cause::Get);
        h.end(id);
        h.mark("y", Cause::Get);
        let _scope = h.cause(Cause::Compaction);
        assert_eq!(v.ssd().lock().current_cause(), Cause::Other);
    }

    #[test]
    fn cause_scopes_nest_via_raii() {
        let v = traced_fs();
        let h = TraceHandle::from_vfs(&v, true);
        assert!(h.is_on());
        {
            let _outer = h.cause(Cause::Put);
            assert_eq!(v.ssd().lock().current_cause(), Cause::Put);
            {
                let _inner = h.cause(Cause::Compaction);
                assert_eq!(v.ssd().lock().current_cause(), Cause::Compaction);
            }
            assert_eq!(v.ssd().lock().current_cause(), Cause::Put);
        }
        assert_eq!(v.ssd().lock().current_cause(), Cause::Other);
    }

    #[test]
    fn spans_and_vfs_io_nest_under_engine_phases() {
        let v = traced_fs();
        let h = TraceHandle::from_vfs(&v, true);
        let f = v.create("t").expect("create");
        let span = h.begin("engine.phase", Cause::Put);
        {
            let _c = h.cause(Cause::Put);
            v.write_at(f, 0, &[1u8; 4096]).expect("write");
        }
        h.end(span);
        let rec = h.tracer().shared().expect("on");
        let rec = rec.lock();
        let spans: Vec<_> = rec.spans().copied().collect();
        let root = spans
            .iter()
            .find(|s| s.name == "engine.phase")
            .expect("phase span recorded");
        let vfs_write = spans
            .iter()
            .find(|s| s.name == "vfs.write")
            .expect("vfs span recorded");
        let dev_write = spans
            .iter()
            .find(|s| s.name == "dev.write")
            .expect("device span recorded");
        assert_eq!(vfs_write.parent, Some(root.id));
        assert_eq!(dev_write.parent, Some(vfs_write.id));
        assert_eq!(dev_write.cause, Cause::Put);
        assert!(root.start <= vfs_write.start && vfs_write.end <= root.end);
    }
}
