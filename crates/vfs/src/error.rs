//! Filesystem error type.

use ptsbench_ssd::SsdError;

/// Errors returned by [`crate::Vfs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// No file with the given name exists.
    NotFound(String),
    /// A file with the given name already exists.
    AlreadyExists(String),
    /// The partition has no free space for the requested allocation.
    /// Mirrors `ENOSPC` — the error RocksDB hits on the paper's two
    /// largest datasets (§4.5).
    NoSpace {
        /// Pages requested.
        requested_pages: u64,
        /// Pages available.
        available_pages: u64,
    },
    /// A stale file handle (file was deleted).
    StaleHandle,
    /// An invalid argument, e.g. writing past EOF leaving a hole.
    InvalidArgument(String),
    /// The simulated device rejected a command (mirrors `EIO`): an
    /// address beyond the advertised space, or an FTL that cannot
    /// reclaim a block. Propagated instead of panicking so engines can
    /// surface device failures as results.
    Device(SsdError),
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::NotFound(name) => write!(f, "file not found: {name}"),
            VfsError::AlreadyExists(name) => write!(f, "file already exists: {name}"),
            VfsError::NoSpace {
                requested_pages,
                available_pages,
            } => write!(
                f,
                "no space left on device (requested {requested_pages} pages, \
                 {available_pages} free)"
            ),
            VfsError::StaleHandle => write!(f, "stale file handle"),
            VfsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            VfsError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for VfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VfsError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SsdError> for VfsError {
    fn from(e: SsdError) -> Self {
        VfsError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(VfsError::NotFound("x".into()).to_string().contains("x"));
        let e = VfsError::NoSpace {
            requested_pages: 10,
            available_pages: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn device_errors_wrap_and_chain() {
        let e: VfsError = SsdError::NoFreeBlocks.into();
        assert!(e.to_string().contains("device error"));
        let source = std::error::Error::source(&e).expect("chained source");
        assert!(source.to_string().contains("free physical blocks"));
    }
}
