//! Filesystem error type.

/// Errors returned by [`crate::Vfs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// No file with the given name exists.
    NotFound(String),
    /// A file with the given name already exists.
    AlreadyExists(String),
    /// The partition has no free space for the requested allocation.
    /// Mirrors `ENOSPC` — the error RocksDB hits on the paper's two
    /// largest datasets (§4.5).
    NoSpace {
        /// Pages requested.
        requested_pages: u64,
        /// Pages available.
        available_pages: u64,
    },
    /// A stale file handle (file was deleted).
    StaleHandle,
    /// An invalid argument, e.g. writing past EOF leaving a hole.
    InvalidArgument(String),
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::NotFound(name) => write!(f, "file not found: {name}"),
            VfsError::AlreadyExists(name) => write!(f, "file already exists: {name}"),
            VfsError::NoSpace {
                requested_pages,
                available_pages,
            } => write!(
                f,
                "no space left on device (requested {requested_pages} pages, \
                 {available_pages} free)"
            ),
            VfsError::StaleHandle => write!(f, "stale file handle"),
            VfsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for VfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(VfsError::NotFound("x".into()).to_string().contains("x"));
        let e = VfsError::NoSpace {
            requested_pages: 10,
            available_pages: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
    }
}
