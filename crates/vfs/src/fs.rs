//! The filesystem: named files on a partition of the simulated drive.
//!
//! [`Vfs`] is cheaply cloneable (shared interior); the key-value engines
//! hold one clone, the measurement harness another, mirroring how a real
//! benchmark observes `df`/`iostat` next to the system under test.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use ptsbench_ssd::{IoCmd, IoQueue, IoToken, LpnRange, Ns, SharedSsd, SimClock, Tracer};

use crate::alloc::{AllocPolicy, ExtentAllocator};
use crate::error::VfsError;
use crate::file::{FileId, FileNode};
use crate::Result;

/// An in-flight batched read: the data (contents are host state, the
/// device only models *when* they arrive) plus the submission tokens of
/// its per-run commands. Produced by [`Vfs::read_runs_async`].
#[derive(Debug)]
pub struct AsyncRead {
    tokens: Vec<IoToken>,
    data: Vec<u8>,
}

impl AsyncRead {
    /// The submission tokens backing this read, in submission order.
    pub fn tokens(&self) -> &[IoToken] {
        &self.tokens
    }

    /// Blocks (advances the virtual clock) until every run completes,
    /// then yields the data.
    pub fn wait(self, queue: &mut IoQueue) -> Vec<u8> {
        for token in self.tokens {
            queue.wait(token);
        }
        self.data
    }

    /// Detaches the completions (background semantics: the device work
    /// stays charged, the clock never blocks) and yields the data.
    pub fn into_bg(self, queue: &mut IoQueue) -> Vec<u8> {
        for token in self.tokens {
            queue.forget(token);
        }
        self.data
    }
}

/// Mount options.
#[derive(Debug, Clone, Copy)]
pub struct VfsOptions {
    /// Extent placement policy.
    pub policy: AllocPolicy,
    /// If true, deleting a file TRIMs its extents (ext4 `-o discard`);
    /// if false (default, matching the paper's `nodiscard` mount) the
    /// device keeps the pages as live data until they are overwritten.
    pub discard_on_delete: bool,
}

impl Default for VfsOptions {
    fn default() -> Self {
        Self {
            policy: AllocPolicy::NextFit,
            discard_on_delete: false,
        }
    }
}

/// Filesystem-level usage statistics (the `df` view, used for the
/// paper's disk-utilization and space-amplification figures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsStats {
    /// Pages in the partition.
    pub partition_pages: u64,
    /// Pages allocated to live files.
    pub used_pages: u64,
    /// Pages free.
    pub free_pages: u64,
    /// Live file count.
    pub live_files: usize,
    /// High-water mark of `used_pages` since mount (or the last
    /// [`Vfs::reset_peak_usage`] call). The paper reports the *maximum*
    /// utilization for the LSM because compaction transiently holds both
    /// inputs and outputs on disk.
    pub peak_used_pages: u64,
    /// Sum of file sizes in bytes (logical data).
    pub data_bytes: u64,
    /// `used_pages * page_size` — bytes of the partition consumed,
    /// including allocation padding.
    pub used_bytes: u64,
}

struct Inner {
    ssd: SharedSsd,
    clock: Arc<SimClock>,
    page_size: u64,
    opts: VfsOptions,
    allocator: ExtentAllocator,
    peak_used_pages: u64,
    files: HashMap<FileId, FileNode>,
    names: HashMap<String, FileId>,
    next_id: u64,
}

/// A filesystem mounted on a partition of a simulated drive.
#[derive(Clone)]
pub struct Vfs {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Vfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("Vfs")
            .field("partition", &g.allocator.partition())
            .field("files", &g.files.len())
            .field("used_pages", &g.allocator.used_pages())
            .finish()
    }
}

impl Vfs {
    /// Mounts a filesystem on `partition` of the shared device.
    pub fn new(ssd: SharedSsd, partition: LpnRange, opts: VfsOptions) -> Self {
        let (clock, page_size, logical) = {
            let dev = ssd.lock();
            (
                Arc::clone(dev.clock()),
                dev.page_size() as u64,
                dev.logical_pages(),
            )
        };
        assert!(partition.end <= logical, "partition beyond device capacity");
        Self {
            inner: Arc::new(Mutex::new(Inner {
                ssd,
                clock,
                page_size,
                opts,
                allocator: ExtentAllocator::new(partition, opts.policy),
                peak_used_pages: 0,
                files: HashMap::new(),
                names: HashMap::new(),
                next_id: 1,
            })),
        }
    }

    /// Mounts a filesystem covering the whole device.
    pub fn whole_device(ssd: SharedSsd, opts: VfsOptions) -> Self {
        let pages = ssd.lock().logical_pages();
        Self::new(ssd, LpnRange::new(0, pages), opts)
    }

    /// The shared device (for SMART observation by a harness).
    pub fn ssd(&self) -> SharedSsd {
        Arc::clone(&self.inner.lock().ssd)
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> Arc<SimClock> {
        Arc::clone(&self.inner.lock().clock)
    }

    /// The device's span tracer (the off tracer unless one was attached
    /// to the device) — engines clone this at build time to record
    /// their own phase spans.
    pub fn tracer(&self) -> Tracer {
        let g = self.inner.lock();
        let dev = g.ssd.lock();
        dev.tracer().clone()
    }

    /// Device page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.inner.lock().page_size
    }

    /// Creates an empty file. Fails if the name exists.
    pub fn create(&self, name: &str) -> Result<FileId> {
        let mut g = self.inner.lock();
        if g.names.contains_key(name) {
            return Err(VfsError::AlreadyExists(name.to_string()));
        }
        let id = FileId(g.next_id);
        g.next_id += 1;
        g.files.insert(id, FileNode::new(name.to_string()));
        g.names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Opens an existing file by name.
    pub fn open(&self, name: &str) -> Result<FileId> {
        let g = self.inner.lock();
        g.names
            .get(name)
            .copied()
            .ok_or_else(|| VfsError::NotFound(name.to_string()))
    }

    /// Whether a file with this name exists.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.lock().names.contains_key(name)
    }

    /// Names of all live files (unordered).
    pub fn list(&self) -> Vec<String> {
        self.inner.lock().names.keys().cloned().collect()
    }

    /// Deletes a file, releasing its extents. Under `nodiscard` (the
    /// default) the device is *not* informed: its pages stay live until
    /// overwritten — the aged-filesystem behaviour of the paper.
    pub fn delete(&self, name: &str) -> Result<()> {
        let mut g = self.inner.lock();
        let id = g
            .names
            .remove(name)
            .ok_or_else(|| VfsError::NotFound(name.to_string()))?;
        let node = g.files.remove(&id).expect("name table points to live file");
        let discard = g.opts.discard_on_delete;
        for e in node.extents {
            g.allocator.release(e);
            if discard {
                g.ssd.lock().trim_range(e.range())?;
            }
        }
        Ok(())
    }

    /// Renames a file (atomic; target must not exist).
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut g = self.inner.lock();
        if g.names.contains_key(to) {
            return Err(VfsError::AlreadyExists(to.to_string()));
        }
        let id = g
            .names
            .remove(from)
            .ok_or_else(|| VfsError::NotFound(from.to_string()))?;
        g.names.insert(to.to_string(), id);
        g.files.get_mut(&id).expect("live file").name = to.to_string();
        Ok(())
    }

    /// File size in bytes.
    pub fn size(&self, id: FileId) -> Result<u64> {
        let g = self.inner.lock();
        g.files
            .get(&id)
            .map(|f| f.data.len() as u64)
            .ok_or(VfsError::StaleHandle)
    }

    /// Appends `buf` to the end of the file (blocks the simulated clock
    /// with direct-I/O semantics).
    pub fn append(&self, id: FileId, buf: &[u8]) -> Result<()> {
        let offset = self.size(id)?;
        self.write_at(id, offset, buf)
    }

    /// Appends `buf` with background semantics (see [`Vfs::write_at_bg`]).
    pub fn append_bg(&self, id: FileId, buf: &[u8]) -> Result<()> {
        let offset = self.size(id)?;
        self.write_at_bg(id, offset, buf)
    }

    /// Writes `buf` at `offset`. The write may extend the file but must
    /// not leave a hole (`offset <= size`). Page-aligned overwrites reuse
    /// the existing LBAs (in-place at the device level).
    pub fn write_at(&self, id: FileId, offset: u64, buf: &[u8]) -> Result<()> {
        self.write_at_opts(id, offset, buf, true)
    }

    /// Background (asynchronous) write: the device work is queued — it
    /// consumes media bandwidth and delays later destages — but the
    /// simulated clock does not advance. This models I/O issued by
    /// background threads (LSM flush/compaction, B+Tree eviction
    /// writers): the foreground only feels it through device congestion.
    pub fn write_at_bg(&self, id: FileId, offset: u64, buf: &[u8]) -> Result<()> {
        self.write_at_opts(id, offset, buf, false)
    }

    fn write_at_opts(&self, id: FileId, offset: u64, buf: &[u8], blocking: bool) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let mut g = self.inner.lock();
        let Inner {
            ssd,
            clock,
            page_size,
            allocator,
            files,
            ..
        } = &mut *g;
        let ps = *page_size;
        let mut g_peak_update = 0u64;
        let node = files.get_mut(&id).ok_or(VfsError::StaleHandle)?;
        let old_size = node.data.len() as u64;
        if offset > old_size {
            return Err(VfsError::InvalidArgument(format!(
                "write at {offset} past EOF {old_size} would leave a hole"
            )));
        }
        let new_size = old_size.max(offset + buf.len() as u64);
        let needed_pages = new_size.div_ceil(ps);
        let have_pages = node.total_pages();
        if needed_pages > have_pages {
            let fresh = allocator.alloc(needed_pages - have_pages)?;
            node.push_extents(fresh);
            g_peak_update = allocator.used_pages();
        }

        // Contents.
        if new_size > old_size {
            node.data.resize(new_size as usize, 0);
        }
        node.data[offset as usize..offset as usize + buf.len()].copy_from_slice(buf);

        // Device traffic. Partial first/last pages that already existed
        // require read-modify-write under direct I/O.
        let first_page = offset / ps;
        let last_page = (offset + buf.len() as u64 - 1) / ps;
        let old_pages = old_size.div_ceil(ps);
        {
            let mut dev = ssd.lock();
            let span = dev
                .tracer()
                .begin("vfs.write", dev.current_cause(), clock.now());
            if !offset.is_multiple_of(ps) && first_page < old_pages {
                let done = dev.read_page(node.page_to_lpn(first_page));
                if blocking {
                    clock.advance_to(done);
                }
            }
            let end = offset + buf.len() as u64;
            if !end.is_multiple_of(ps) && last_page < old_pages && last_page != first_page {
                let done = dev.read_page(node.page_to_lpn(last_page));
                if blocking {
                    clock.advance_to(done);
                }
            }
            for run in node.runs(first_page, last_page - first_page + 1) {
                let c = dev.write_range(run)?;
                if blocking {
                    clock.advance_to(c.host_done);
                }
                node.durable_at = node.durable_at.max(c.durable_at);
            }
            dev.tracer().end(span, clock.now());
        }
        if g_peak_update > g.peak_used_pages {
            g.peak_used_pages = g_peak_update;
        }
        Ok(())
    }

    /// Resets the peak-usage high-water mark to current usage.
    pub fn reset_peak_usage(&self) {
        let mut g = self.inner.lock();
        g.peak_used_pages = g.allocator.used_pages();
    }

    /// Reads up to `len` bytes at `offset`; short reads happen at EOF.
    /// Charges device reads for every page touched (the engines above
    /// maintain their own caches; a call here is a cache miss).
    pub fn read_at(&self, id: FileId, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.read_at_opts(id, offset, len, true)
    }

    /// Background read: consumes media bandwidth without advancing the
    /// simulated clock (I/O by background threads, e.g. compaction input
    /// scans).
    pub fn read_at_bg(&self, id: FileId, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.read_at_opts(id, offset, len, false)
    }

    fn read_at_opts(&self, id: FileId, offset: u64, len: usize, blocking: bool) -> Result<Vec<u8>> {
        let mut g = self.inner.lock();
        let Inner {
            ssd,
            clock,
            page_size,
            files,
            ..
        } = &mut *g;
        let ps = *page_size;
        let node = files.get(&id).ok_or(VfsError::StaleHandle)?;
        let size = node.data.len() as u64;
        if offset >= size || len == 0 {
            return Ok(Vec::new());
        }
        let len = len.min((size - offset) as usize);
        let first_page = offset / ps;
        let last_page = (offset + len as u64 - 1) / ps;
        {
            let mut dev = ssd.lock();
            let span = dev
                .tracer()
                .begin("vfs.read", dev.current_cause(), clock.now());
            for run in node.runs(first_page, last_page - first_page + 1) {
                let done = dev.read_pages(run);
                if blocking {
                    clock.advance_to(done);
                }
            }
            dev.tracer().end(span, clock.now());
        }
        Ok(node.data[offset as usize..offset as usize + len].to_vec())
    }

    /// Creates a submission/completion queue of `depth` outstanding
    /// commands over this filesystem's device — the entry point of the
    /// asynchronous I/O path (see [`Vfs::read_runs_async`]).
    pub fn io_queue(&self, depth: usize) -> IoQueue {
        let g = self.inner.lock();
        IoQueue::new(Arc::clone(&g.ssd), depth)
    }

    /// Submits one read command **per extent run** of `[offset,
    /// offset+len)` to `queue` and returns immediately with an
    /// [`AsyncRead`] holding the data and the submission tokens; the
    /// caller decides when (and whether) to block on the completions.
    /// This is the io_uring shape of [`Vfs::read_at`]: the runs' media
    /// times overlap up to the device's channel count and their base
    /// latencies pipeline, instead of each run charging its full
    /// latency serially.
    pub fn read_runs_async(
        &self,
        queue: &mut IoQueue,
        id: FileId,
        offset: u64,
        len: usize,
    ) -> Result<AsyncRead> {
        let (runs, data) = {
            let g = self.inner.lock();
            let node = g.files.get(&id).ok_or(VfsError::StaleHandle)?;
            let size = node.data.len() as u64;
            if offset >= size || len == 0 {
                return Ok(AsyncRead {
                    tokens: Vec::new(),
                    data: Vec::new(),
                });
            }
            let len = len.min((size - offset) as usize);
            let ps = g.page_size;
            let first_page = offset / ps;
            let last_page = (offset + len as u64 - 1) / ps;
            (
                node.runs(first_page, last_page - first_page + 1),
                node.data[offset as usize..offset as usize + len].to_vec(),
            )
        };
        let mut tokens = Vec::with_capacity(runs.len());
        for run in runs {
            match queue.submit(IoCmd::Read { range: run }) {
                Ok(token) => tokens.push(token),
                Err(e) => {
                    // Don't leak the runs already submitted: their device
                    // work stays charged, but nothing will ever wait.
                    for token in tokens {
                        queue.forget(token);
                    }
                    return Err(e.into());
                }
            }
        }
        Ok(AsyncRead { tokens, data })
    }

    /// Batched foreground read: submits one command per extent run and
    /// blocks (advances the clock) until all of them complete. With a
    /// depth-1 queue this reproduces [`Vfs::read_at`] exactly; deeper
    /// queues overlap the runs.
    pub fn read_at_async(
        &self,
        queue: &mut IoQueue,
        id: FileId,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>> {
        let (tracer, cause, clock) = self.trace_context();
        let span = tracer.begin("vfs.read", cause, clock.now());
        let result = self.read_runs_async(queue, id, offset, len);
        let data = match result {
            Ok(read) => read.wait(queue),
            Err(e) => {
                tracer.end(span, clock.now());
                return Err(e);
            }
        };
        tracer.end(span, clock.now());
        Ok(data)
    }

    /// The tracer, current device cause and clock in one grab (span
    /// bookkeeping for the queue-based I/O paths, which run outside the
    /// filesystem lock).
    fn trace_context(&self) -> (Tracer, ptsbench_ssd::Cause, Arc<SimClock>) {
        let g = self.inner.lock();
        let dev = g.ssd.lock();
        (
            dev.tracer().clone(),
            dev.current_cause(),
            Arc::clone(&g.clock),
        )
    }

    /// Appends `buf` through the submission queue: one write command per
    /// extent run (plus a read-modify-write of an unaligned tail page),
    /// waiting for all completions. With a depth-1 queue this reproduces
    /// [`Vfs::append`] exactly; deeper queues overlap the run writes.
    pub fn append_async(&self, queue: &mut IoQueue, id: FileId, buf: &[u8]) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        // Phase 1 (under the lock): allocate, copy contents, derive the
        // device commands.
        let (rmw_lpn, runs) = {
            let mut g = self.inner.lock();
            let Inner {
                page_size,
                allocator,
                files,
                ..
            } = &mut *g;
            let ps = *page_size;
            let node = files.get_mut(&id).ok_or(VfsError::StaleHandle)?;
            let offset = node.data.len() as u64;
            let new_size = offset + buf.len() as u64;
            let needed_pages = new_size.div_ceil(ps);
            let have_pages = node.total_pages();
            let mut peak_update = 0u64;
            if needed_pages > have_pages {
                let fresh = allocator.alloc(needed_pages - have_pages)?;
                node.push_extents(fresh);
                peak_update = allocator.used_pages();
            }
            node.data.extend_from_slice(buf);

            let first_page = offset / ps;
            let last_page = (new_size - 1) / ps;
            let old_pages = offset.div_ceil(ps);
            // Appending to an unaligned EOF rewrites the partial tail
            // page: direct I/O must read it back first.
            let rmw_lpn = (!offset.is_multiple_of(ps) && first_page < old_pages)
                .then(|| node.page_to_lpn(first_page));
            let runs = node.runs(first_page, last_page - first_page + 1);
            if peak_update > g.peak_used_pages {
                g.peak_used_pages = peak_update;
            }
            (rmw_lpn, runs)
        };

        // Phase 2 (lock dropped): submit. The RMW read is a data
        // dependency of the tail-page write, so it completes first.
        let (tracer, cause, clock) = self.trace_context();
        let span = tracer.begin("vfs.append", cause, clock.now());
        if let Some(lpn) = rmw_lpn {
            let token = queue.submit(IoCmd::read_page(lpn))?;
            queue.wait(token);
        }
        let mut tokens = Vec::with_capacity(runs.len());
        let mut submit_error = None;
        for run in runs {
            match queue.submit(IoCmd::Write { range: run }) {
                Ok(token) => tokens.push(token),
                Err(e) => {
                    submit_error = Some(e);
                    break;
                }
            }
        }
        let mut durable_at = 0;
        for token in tokens {
            let c = queue.wait(token);
            durable_at = durable_at.max(c.durable_at);
        }
        tracer.end(span, clock.now());
        if let Some(e) = submit_error {
            return Err(e.into());
        }

        // Phase 3: record the durability horizon.
        let mut g = self.inner.lock();
        if let Some(node) = g.files.get_mut(&id) {
            node.durable_at = node.durable_at.max(durable_at);
        }
        Ok(())
    }

    /// Truncates a file to `new_len` bytes **keeping its allocated
    /// extents** (the `fallocate`-style log-recycling pattern: RocksDB's
    /// `recycle_log_file_num` and WiredTiger's journal preallocation both
    /// reuse the same LBAs for successive logs). No device traffic.
    pub fn truncate(&self, id: FileId, new_len: u64) -> Result<()> {
        let mut g = self.inner.lock();
        let node = g.files.get_mut(&id).ok_or(VfsError::StaleHandle)?;
        if new_len > node.data.len() as u64 {
            return Err(VfsError::InvalidArgument(format!(
                "truncate to {new_len} beyond EOF {}",
                node.data.len()
            )));
        }
        node.data.truncate(new_len as usize);
        Ok(())
    }

    /// Blocks until every write to this file is durable on media.
    pub fn fsync(&self, id: FileId) -> Result<()> {
        let g = self.inner.lock();
        let node = g.files.get(&id).ok_or(VfsError::StaleHandle)?;
        g.clock.advance_to(node.durable_at);
        Ok(())
    }

    /// Durability horizon of the file (diagnostics).
    pub fn durable_at(&self, id: FileId) -> Result<Ns> {
        let g = self.inner.lock();
        g.files
            .get(&id)
            .map(|f| f.durable_at)
            .ok_or(VfsError::StaleHandle)
    }

    /// Pending device work in nanoseconds (backend backlog) — lets an
    /// engine throttle its background I/O like RocksDB's
    /// pending-compaction-bytes stall.
    pub fn device_backlog_ns(&self) -> Ns {
        let g = self.inner.lock();
        let dev = g.ssd.lock();
        dev.backend_backlog()
    }

    /// TRIMs all free space (the `fstrim` maintenance command).
    /// Returns pages trimmed on the device.
    pub fn trim_free_space(&self) -> Result<u64> {
        let g = self.inner.lock();
        let mut total = 0;
        let mut dev = g.ssd.lock();
        for run in g.allocator.free_runs() {
            total += dev.trim_range(run.range())?;
        }
        Ok(total)
    }

    /// Filesystem usage statistics.
    pub fn stats(&self) -> FsStats {
        let g = self.inner.lock();
        let data_bytes: u64 = g.files.values().map(|f| f.data.len() as u64).sum();
        let used = g.allocator.used_pages();
        FsStats {
            partition_pages: g.allocator.partition().len(),
            used_pages: used,
            free_pages: g.allocator.free_pages(),
            live_files: g.files.len(),
            peak_used_pages: g.peak_used_pages.max(used),
            data_bytes,
            used_bytes: used * g.page_size,
        }
    }

    /// Validates allocator invariants plus extent/file accounting (tests).
    pub fn check_invariants(&self) {
        let g = self.inner.lock();
        g.allocator.check_invariants();
        let file_pages: u64 = g.files.values().map(|f| f.total_pages()).sum();
        assert_eq!(
            file_pages,
            g.allocator.used_pages(),
            "extent accounting drifted"
        );
        for (name, id) in &g.names {
            assert_eq!(&g.files[id].name, name, "name table out of sync");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsbench_ssd::{DeviceConfig, DeviceProfile, Ssd};

    const MB: u64 = 1024 * 1024;

    fn fs() -> Vfs {
        fs_with(VfsOptions::default())
    }

    fn fs_with(opts: VfsOptions) -> Vfs {
        let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 16 * MB));
        Vfs::whole_device(ssd.into_shared(), opts)
    }

    #[test]
    fn create_write_read_round_trip() {
        let v = fs();
        let f = v.create("a").expect("create");
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        v.write_at(f, 0, &payload).expect("write");
        assert_eq!(v.size(f).expect("size"), 10_000);
        let got = v.read_at(f, 0, 10_000).expect("read");
        assert_eq!(got, payload);
        // Sub-range read.
        assert_eq!(
            v.read_at(f, 5_000, 100).expect("read"),
            payload[5_000..5_100]
        );
        v.check_invariants();
    }

    #[test]
    fn aligned_overwrite_is_in_place() {
        let v = fs();
        let f = v.create("a").expect("create");
        v.write_at(f, 0, &vec![1u8; 8 * 4096]).expect("write");
        let writes_before = v.ssd().lock().smart().host_pages_written;
        let mapped_before = v.ssd().lock().mapped_pages();
        v.write_at(f, 4096, &vec![2u8; 4096]).expect("overwrite");
        let dev = v.ssd();
        let dev = dev.lock();
        assert_eq!(dev.smart().host_pages_written, writes_before + 1);
        assert_eq!(
            dev.mapped_pages(),
            mapped_before,
            "no new LBAs for in-place write"
        );
        drop(dev);
        let got = v.read_at(f, 0, 3 * 4096).expect("read");
        assert!(got[..4096].iter().all(|&b| b == 1));
        assert!(got[4096..8192].iter().all(|&b| b == 2));
    }

    #[test]
    fn unaligned_write_charges_rmw_read() {
        let v = fs();
        let f = v.create("a").expect("create");
        v.write_at(f, 0, &vec![7u8; 2 * 4096]).expect("write");
        let reads_before = v.ssd().lock().smart().host_pages_read;
        v.write_at(f, 100, &[9u8; 8]).expect("partial overwrite");
        assert!(
            v.ssd().lock().smart().host_pages_read > reads_before,
            "RMW must read"
        );
        let got = v.read_at(f, 0, 4096).expect("read");
        assert_eq!(&got[100..108], &[9u8; 8]);
        assert_eq!(got[99], 7);
        assert_eq!(got[108], 7);
    }

    #[test]
    fn hole_writes_rejected() {
        let v = fs();
        let f = v.create("a").expect("create");
        assert!(matches!(
            v.write_at(f, 10, &[1]),
            Err(VfsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn delete_nodiscard_keeps_device_pages_live() {
        let v = fs(); // nodiscard default
        let f = v.create("a").expect("create");
        v.write_at(f, 0, &vec![1u8; 64 * 4096]).expect("write");
        let mapped = v.ssd().lock().mapped_pages();
        v.delete("a").expect("delete");
        assert_eq!(
            v.ssd().lock().mapped_pages(),
            mapped,
            "nodiscard delete must not trim device pages"
        );
        assert_eq!(v.stats().used_pages, 0, "fs space is reclaimed");
        v.check_invariants();
    }

    #[test]
    fn delete_with_discard_trims() {
        let v = fs_with(VfsOptions {
            discard_on_delete: true,
            ..Default::default()
        });
        let f = v.create("a").expect("create");
        v.write_at(f, 0, &vec![1u8; 64 * 4096]).expect("write");
        v.delete("a").expect("delete");
        assert_eq!(v.ssd().lock().mapped_pages(), 0, "discard delete must trim");
    }

    #[test]
    fn trim_free_space_is_fstrim() {
        let v = fs();
        let f = v.create("a").expect("create");
        v.write_at(f, 0, &vec![1u8; 64 * 4096]).expect("write");
        v.delete("a").expect("delete");
        let trimmed = v.trim_free_space().expect("fstrim");
        assert_eq!(trimmed, 64);
        assert_eq!(v.ssd().lock().mapped_pages(), 0);
    }

    #[test]
    fn enospc_propagates() {
        let v = fs();
        let f = v.create("a").expect("create");
        let big = vec![0u8; 20 * MB as usize];
        assert!(matches!(
            v.write_at(f, 0, &big),
            Err(VfsError::NoSpace { .. })
        ));
        v.check_invariants();
    }

    #[test]
    fn rename_and_listing() {
        let v = fs();
        v.create("a").expect("create");
        v.rename("a", "b").expect("rename");
        assert!(!v.exists("a"));
        assert!(v.exists("b"));
        assert_eq!(v.list(), vec!["b".to_string()]);
        assert!(matches!(
            v.rename("missing", "c"),
            Err(VfsError::NotFound(_))
        ));
        v.create("c").expect("create");
        assert!(matches!(
            v.rename("b", "c"),
            Err(VfsError::AlreadyExists(_))
        ));
        v.check_invariants();
    }

    #[test]
    fn fsync_blocks_until_durable() {
        let v = fs();
        let f = v.create("a").expect("create");
        v.write_at(f, 0, &vec![1u8; 256 * 4096]).expect("write");
        let clock = v.clock();
        let before = clock.now();
        let durable = v.durable_at(f).expect("durable");
        v.fsync(f).expect("fsync");
        assert!(clock.now() >= durable);
        assert!(clock.now() >= before);
    }

    #[test]
    fn writes_advance_the_clock() {
        let v = fs();
        let f = v.create("a").expect("create");
        let clock = v.clock();
        let t0 = clock.now();
        v.write_at(f, 0, &vec![1u8; 4096]).expect("write");
        assert!(
            clock.now() > t0,
            "direct-I/O write must consume simulated time"
        );
    }

    #[test]
    fn partition_confines_lbas() {
        let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 16 * MB));
        let shared = ssd.into_shared();
        let pages = shared.lock().logical_pages();
        shared.lock().enable_trace();
        let v = Vfs::new(
            Arc::clone(&shared),
            LpnRange::new(0, pages / 2),
            VfsOptions::default(),
        );
        let f = v.create("a").expect("create");
        v.write_at(f, 0, &vec![1u8; (pages / 2 * 4096) as usize])
            .expect("fill partition");
        let dev = shared.lock();
        let trace = dev.write_trace().expect("trace");
        assert!(
            (trace.untouched_fraction() - 0.5).abs() < 0.01,
            "half the device must stay untouched, got {}",
            trace.untouched_fraction()
        );
    }

    /// Builds a file fragmented across many extents by interleaving two
    /// growing files (NextFit then alternates their allocations).
    fn fragmented_file(v: &Vfs, pages: u64) -> FileId {
        let a = v.create("frag").expect("create");
        let b = v.create("other").expect("create");
        for _ in 0..pages {
            v.write_at(a, v.size(a).expect("size"), &[1u8; 4096])
                .expect("write a");
            v.write_at(b, v.size(b).expect("size"), &[2u8; 4096])
                .expect("write b");
        }
        a
    }

    #[test]
    fn read_at_async_depth1_matches_sync_read() {
        let sync_fs = fs();
        let async_fs = fs();
        let fa = fragmented_file(&sync_fs, 16);
        let fb = fragmented_file(&async_fs, 16);
        let mut q = async_fs.io_queue(1);
        let t_sync = sync_fs.clock().now();
        let t_async = async_fs.clock().now();
        assert_eq!(t_sync, t_async);
        let want = sync_fs.read_at(fa, 0, 16 * 4096).expect("sync read");
        let got = async_fs
            .read_at_async(&mut q, fb, 0, 16 * 4096)
            .expect("async read");
        assert_eq!(want, got, "contents match");
        assert_eq!(
            sync_fs.clock().now(),
            async_fs.clock().now(),
            "depth-1 async read must cost exactly the sync time"
        );
    }

    #[test]
    fn deep_queue_overlaps_fragmented_reads() {
        let serial_fs = fs();
        let deep_fs = fs();
        let fa = fragmented_file(&serial_fs, 32);
        let fb = fragmented_file(&deep_fs, 32);
        let mut q1 = serial_fs.io_queue(1);
        let mut q8 = deep_fs.io_queue(8);
        let t0 = serial_fs.clock().now();
        serial_fs
            .read_at_async(&mut q1, fa, 0, 32 * 4096)
            .expect("read");
        let serial = serial_fs.clock().now() - t0;
        let t0 = deep_fs.clock().now();
        deep_fs
            .read_at_async(&mut q8, fb, 0, 32 * 4096)
            .expect("read");
        let deep = deep_fs.clock().now() - t0;
        assert!(
            deep < serial / 2,
            "QD=8 must overlap the per-run base latencies: {deep} vs {serial}"
        );
    }

    #[test]
    fn append_async_depth1_matches_sync_append() {
        let sync_fs = fs();
        let async_fs = fs();
        let fa = sync_fs.create("a").expect("create");
        let fb = async_fs.create("a").expect("create");
        let mut q = async_fs.io_queue(1);
        // Unaligned chunks exercise the RMW tail path.
        for chunk in [3000usize, 5000, 4096, 100] {
            let payload: Vec<u8> = (0..chunk).map(|i| (i % 251) as u8).collect();
            sync_fs.append(fa, &payload).expect("sync append");
            async_fs
                .append_async(&mut q, fb, &payload)
                .expect("async append");
            assert_eq!(sync_fs.clock().now(), async_fs.clock().now());
            assert_eq!(
                sync_fs.durable_at(fa).expect("durable"),
                async_fs.durable_at(fb).expect("durable")
            );
        }
        assert_eq!(
            sync_fs.read_at(fa, 0, 20_000).expect("read"),
            async_fs.read_at(fb, 0, 20_000).expect("read")
        );
        async_fs.fsync(fb).expect("fsync");
        async_fs.check_invariants();
    }

    #[test]
    fn async_reads_record_smart_traffic() {
        let v = fs();
        let f = v.create("a").expect("create");
        v.write_at(f, 0, &vec![1u8; 8 * 4096]).expect("write");
        let before = v.ssd().lock().smart().host_pages_read;
        let mut q = v.io_queue(4);
        v.read_at_async(&mut q, f, 0, 8 * 4096).expect("read");
        assert_eq!(
            v.ssd().lock().smart().host_pages_read,
            before + 8,
            "async reads charge the same SMART traffic"
        );
    }

    #[test]
    fn stats_track_usage() {
        let v = fs();
        let f = v.create("a").expect("create");
        v.write_at(f, 0, &vec![1u8; 4096 * 3 + 10]).expect("write");
        let s = v.stats();
        assert_eq!(s.live_files, 1);
        assert_eq!(s.used_pages, 4);
        assert_eq!(s.data_bytes, 4096 * 3 + 10);
        assert_eq!(s.used_bytes, 4 * 4096);
    }
}
