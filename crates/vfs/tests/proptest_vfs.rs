//! Property-based tests of the filesystem: random create / write /
//! append / truncate / delete / rename sequences agree with a
//! name→bytes model, and the extent allocator never leaks or overlaps.

use std::collections::HashMap;

use proptest::prelude::*;

use ptsbench_ssd::{DeviceConfig, DeviceProfile, LpnRange, Ssd};
use ptsbench_vfs::{AllocPolicy, ExtentAllocator, Vfs, VfsError, VfsOptions};

#[derive(Debug, Clone)]
enum FsOp {
    Create(u8),
    WriteAt(u8, u16, u16),
    Append(u8, u16),
    Truncate(u8, u16),
    Delete(u8),
    Rename(u8, u8),
    Read(u8, u16, u16),
}

fn fs_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        2 => (0..6u8).prop_map(FsOp::Create),
        4 => (0..6u8, 0..20_000u16, 1..9_000u16).prop_map(|(f, o, l)| FsOp::WriteAt(f, o, l)),
        3 => (0..6u8, 1..9_000u16).prop_map(|(f, l)| FsOp::Append(f, l)),
        1 => (0..6u8, 0..20_000u16).prop_map(|(f, l)| FsOp::Truncate(f, l)),
        1 => (0..6u8).prop_map(FsOp::Delete),
        1 => (0..6u8, 0..6u8).prop_map(|(a, b)| FsOp::Rename(a, b)),
        3 => (0..6u8, 0..20_000u16, 1..9_000u16).prop_map(|(f, o, l)| FsOp::Read(f, o, l)),
    ]
}

fn name(i: u8) -> String {
    format!("file-{i}")
}

fn pattern(seed: u16, len: usize) -> Vec<u8> {
    (0..len).map(|i| (seed as usize + i) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The filesystem agrees byte-for-byte with a HashMap model.
    #[test]
    fn vfs_matches_model(ops in proptest::collection::vec(fs_op(), 1..120)) {
        let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 32 << 20));
        let vfs = Vfs::whole_device(ssd.into_shared(), VfsOptions::default());
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in &ops {
            match op {
                FsOp::Create(f) => {
                    let n = name(*f);
                    let result = vfs.create(&n);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(n) {
                        prop_assert!(result.is_ok());
                        e.insert(Vec::new());
                    } else {
                        prop_assert!(matches!(result, Err(VfsError::AlreadyExists(_))));
                    }
                }
                FsOp::WriteAt(f, offset, len) => {
                    let n = name(*f);
                    let Ok(id) = vfs.open(&n) else {
                        prop_assert!(!model.contains_key(&n));
                        continue;
                    };
                    let data = pattern(*offset ^ *len, *len as usize);
                    let offset = *offset as u64;
                    let result = vfs.write_at(id, offset, &data);
                    let m = model.get_mut(&n).expect("model has file");
                    if offset > m.len() as u64 {
                        prop_assert!(matches!(result, Err(VfsError::InvalidArgument(_))));
                    } else {
                        prop_assert!(result.is_ok(), "write failed: {:?}", result);
                        let end = offset as usize + data.len();
                        if end > m.len() {
                            m.resize(end, 0);
                        }
                        m[offset as usize..end].copy_from_slice(&data);
                    }
                }
                FsOp::Append(f, len) => {
                    let n = name(*f);
                    let Ok(id) = vfs.open(&n) else { continue };
                    let data = pattern(*len, *len as usize);
                    vfs.append(id, &data).expect("append");
                    model.get_mut(&n).expect("model has file").extend_from_slice(&data);
                }
                FsOp::Truncate(f, len) => {
                    let n = name(*f);
                    let Ok(id) = vfs.open(&n) else { continue };
                    let m = model.get_mut(&n).expect("model has file");
                    let result = vfs.truncate(id, *len as u64);
                    if (*len as usize) > m.len() {
                        prop_assert!(result.is_err());
                    } else {
                        prop_assert!(result.is_ok());
                        m.truncate(*len as usize);
                    }
                }
                FsOp::Delete(f) => {
                    let n = name(*f);
                    let result = vfs.delete(&n);
                    prop_assert_eq!(result.is_ok(), model.remove(&n).is_some());
                }
                FsOp::Rename(a, b) => {
                    let (from, to) = (name(*a), name(*b));
                    let result = vfs.rename(&from, &to);
                    if model.contains_key(&from) && !model.contains_key(&to) && from != to {
                        prop_assert!(result.is_ok());
                        let v = model.remove(&from).expect("source exists");
                        model.insert(to, v);
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                FsOp::Read(f, offset, len) => {
                    let n = name(*f);
                    let Ok(id) = vfs.open(&n) else { continue };
                    let got = vfs.read_at(id, *offset as u64, *len as usize).expect("read");
                    let m = &model[&n];
                    let start = (*offset as usize).min(m.len());
                    let end = (start + *len as usize).min(m.len());
                    prop_assert_eq!(&got, &m[start..end], "read mismatch on {}", n);
                }
            }
            vfs.check_invariants();
        }
        // Final byte-for-byte audit.
        for (n, bytes) in &model {
            let id = vfs.open(n).expect("file exists");
            prop_assert_eq!(vfs.size(id).expect("size") as usize, bytes.len());
            let got = vfs.read_at(id, 0, bytes.len()).expect("read");
            prop_assert_eq!(&got, bytes, "content mismatch on {}", n);
        }
        prop_assert_eq!(vfs.list().len(), model.len());
    }

    /// The allocator hands out non-overlapping extents and accounts free
    /// pages exactly, under arbitrary alloc/release interleavings.
    #[test]
    fn allocator_never_overlaps(
        steps in proptest::collection::vec((1u64..64, any::<bool>()), 1..200),
        policy in prop_oneof![
            Just(AllocPolicy::NextFit),
            Just(AllocPolicy::FirstFit),
            Just(AllocPolicy::BestFit)
        ],
    ) {
        let total = 2048u64;
        let mut alloc = ExtentAllocator::new(LpnRange::new(0, total), policy);
        let mut live: Vec<ptsbench_vfs::Extent> = Vec::new();
        let mut live_pages = 0u64;
        for (i, &(pages, release_first)) in steps.iter().enumerate() {
            if release_first && !live.is_empty() {
                let e = live.swap_remove(i % live.len());
                live_pages -= e.pages;
                alloc.release(e);
            }
            if let Ok(extents) = alloc.alloc(pages) {
                live_pages += pages;
                live.extend(extents);
            }
            alloc.check_invariants();
            prop_assert_eq!(alloc.used_pages(), live_pages, "page accounting drifted");
            // No two live extents overlap.
            let mut sorted = live.clone();
            sorted.sort_by_key(|e| e.start);
            for w in sorted.windows(2) {
                prop_assert!(w[0].end() <= w[1].start, "extents overlap");
            }
        }
    }
}
