//! Background vs foreground I/O semantics: background writes/reads
//! consume device bandwidth without advancing the simulated clock, and
//! foreground traffic feels them only through queueing — the mechanism
//! that models background flush/compaction threads.

use ptsbench_ssd::{DeviceConfig, DeviceProfile, Ssd};
use ptsbench_vfs::{Vfs, VfsOptions};

fn stack() -> Vfs {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 32 << 20));
    Vfs::whole_device(ssd.into_shared(), VfsOptions::default())
}

#[test]
fn background_writes_do_not_advance_the_clock() {
    let v = stack();
    let clock = v.clock();
    let f = v.create("bg").expect("create");
    let t0 = clock.now();
    v.write_at_bg(f, 0, &vec![1u8; 1 << 20]).expect("bg write");
    assert_eq!(clock.now(), t0, "background writes must not block the host");
    // ... but the work is real: the device saw the pages and holds backlog.
    let dev = v.ssd();
    let dev = dev.lock();
    assert_eq!(dev.smart().host_pages_written, 256);
    assert!(dev.backend_backlog() > 0, "the media must be busy");
}

#[test]
fn foreground_write_queues_behind_background_burst() {
    let v = stack();
    let clock = v.clock();
    let bg = v.create("bg").expect("create");
    let fg = v.create("fg").expect("create");
    // Prime the foreground latency without congestion.
    v.write_at(fg, 0, &[0u8; 4096]).expect("fg write");
    let t0 = clock.now();
    v.write_at(fg, 0, &[1u8; 4096]).expect("fg write");
    let quiet_latency = clock.now() - t0;

    // A large background burst fills the device cache...
    v.append_bg(bg, &vec![2u8; 4 << 20]).expect("bg burst");
    // ...so the next foreground write waits for destage room.
    let t1 = clock.now();
    v.write_at(fg, 0, &[3u8; 4096]).expect("fg write");
    let congested_latency = clock.now() - t1;
    assert!(
        congested_latency > 3 * quiet_latency,
        "foreground must feel background congestion: {congested_latency} vs {quiet_latency}"
    );
}

#[test]
fn background_reads_charge_bandwidth_only() {
    let v = stack();
    let clock = v.clock();
    let f = v.create("data").expect("create");
    v.write_at(f, 0, &vec![7u8; 1 << 20]).expect("write");
    let reads_before = v.ssd().lock().smart().host_pages_read;
    let t0 = clock.now();
    let got = v.read_at_bg(f, 0, 1 << 20).expect("bg read");
    assert_eq!(got.len(), 1 << 20);
    assert_eq!(clock.now(), t0, "background reads must not block the host");
    assert_eq!(v.ssd().lock().smart().host_pages_read, reads_before + 256);
}

#[test]
fn durability_is_tracked_across_bg_writes() {
    let v = stack();
    let clock = v.clock();
    let f = v.create("bg").expect("create");
    v.write_at_bg(f, 0, &vec![1u8; 256 << 10])
        .expect("bg write");
    let durable = v.durable_at(f).expect("durable");
    assert!(durable > clock.now(), "destage completes in the future");
    v.fsync(f).expect("fsync");
    assert!(
        clock.now() >= durable,
        "fsync must wait for background destage"
    );
}

#[test]
fn peak_usage_captures_transients() {
    let v = stack();
    let a = v.create("a").expect("create");
    v.write_at(a, 0, &vec![1u8; 2 << 20]).expect("write");
    let b = v.create("b").expect("create");
    v.write_at(b, 0, &vec![2u8; 2 << 20]).expect("write");
    // Transient peak: both files alive.
    v.delete("a").expect("delete");
    let s = v.stats();
    assert_eq!(s.used_pages, 512, "one 2 MiB file remains");
    assert_eq!(s.peak_used_pages, 1024, "peak saw both files");
    v.reset_peak_usage();
    assert_eq!(v.stats().peak_used_pages, 512, "peak resets to current");
}

#[test]
fn bg_and_fg_data_views_are_identical() {
    let v = stack();
    let f = v.create("mix").expect("create");
    v.write_at_bg(f, 0, &vec![9u8; 64 << 10]).expect("bg");
    v.write_at(f, 32 << 10, &vec![4u8; 16 << 10])
        .expect("fg overwrite");
    let via_fg = v.read_at(f, 0, 64 << 10).expect("read");
    let via_bg = v.read_at_bg(f, 0, 64 << 10).expect("read");
    assert_eq!(via_fg, via_bg);
    assert!(via_fg[..32 << 10].iter().all(|&b| b == 9));
    assert!(via_fg[32 << 10..48 << 10].iter().all(|&b| b == 4));
}
