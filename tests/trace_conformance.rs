//! Trace conformance: a *disabled* flight recorder must be invisible —
//! and an enabled one must be free.
//!
//! The tracing subsystem follows the repo's layering contract: every
//! new knob has an explicit pass-through setting whose output is
//! byte-identical to the code that predates it. `trace = false` (the
//! default) keeps every engine, the device, and the report renderer on
//! their seed paths, so runs configured that way must reproduce the
//! pre-trace harness output **byte-identically at the rendered level**
//! — same labels, same numbers, no `cause` attribution anywhere — for
//! every registered engine, across the sharded driver and the serving
//! front-end. Like the cache suite, the pin is against the
//! `tests/golden/pr5_cache_off.txt` snapshot captured before either
//! tier existed, so a regression in *any* layer the recorder touched
//! shows up as a byte diff against history.
//!
//! Tracing also carries a stronger promise than invisibility-when-off:
//! spans never advance the virtual clock and never consume workload
//! randomness, so a *traced* run executes the same ops, moves the same
//! bytes, and measures the same latencies as its untraced twin — the
//! recorder only observes. The last test pins that zero-cost claim.

use ptsbench::core::frontend::FrontendRun;
use ptsbench::core::registry::{EngineKind, EngineRegistry};
use ptsbench::core::runner::{run, RunConfig};
use ptsbench::core::sharded::ShardedRun;
use ptsbench::harness::{run_frontend, run_sharded};
use ptsbench::ssd::MINUTE;
use ptsbench::workload::KeyDistribution;

/// Rendered harness output captured before the trace subsystem landed.
const GOLDEN: &str = include_str!("golden/pr5_cache_off.txt");

fn engines() -> Vec<EngineKind> {
    ptsbench::hashlog::register();
    EngineRegistry::all()
}

/// One `@@@section@@@` block of the golden snapshot.
fn golden_section(name: &str) -> String {
    let header = format!("@@@{name}@@@\n");
    let start = GOLDEN
        .find(&header)
        .unwrap_or_else(|| panic!("golden section {name} missing"))
        + header.len();
    let end = GOLDEN[start..]
        .find("@@@")
        .expect("golden sections are terminated");
    GOLDEN[start..start + end].to_string()
}

/// The exact shapes the snapshot was captured with (small enough for
/// debug-mode tests: 16 MiB per shard, short measured phase).
fn base(engine: EngineKind, total_bytes: u64) -> RunConfig {
    RunConfig {
        engine,
        device_bytes: total_bytes,
        duration: 10 * MINUTE,
        sample_window: 5 * MINUTE,
        ..RunConfig::default()
    }
}

fn serving_shape(engine: EngineKind) -> FrontendRun {
    let mut cfg = FrontendRun::new(base(engine, 32 << 20), 6);
    cfg.shards = 2;
    cfg.base.read_fraction = 0.5;
    cfg.base.distribution = KeyDistribution::Zipfian { theta: 0.9 };
    cfg
}

/// The tentpole guarantee: with the recorder off, today's sharded
/// harness reproduces the pre-trace golden output byte-for-byte for
/// every engine that existed when the snapshot was taken.
#[test]
fn trace_off_sharded_runs_match_the_pre_trace_golden_output() {
    for engine in engines() {
        let name = format!("sharded/{engine}");
        let report = run_sharded(&ShardedRun::new(base(engine, 32 << 20), 2)).expect("run");
        assert_eq!(
            report.render(),
            golden_section(&name),
            "{engine}: trace-off sharded output must be byte-identical to seed"
        );
        assert!(
            !report.render().contains("cause"),
            "{engine}: no cause attribution may appear with the recorder off"
        );
    }
}

/// The same pin through the serving front-end (fan-in, Zipfian mixed
/// load — the shape `fig_anatomy` traces).
#[test]
fn trace_off_frontend_runs_match_the_pre_trace_golden_output() {
    for engine in engines() {
        let name = format!("frontend/{engine}");
        let report = run_frontend(&serving_shape(engine)).expect("run");
        assert_eq!(
            report.render(),
            golden_section(&name),
            "{engine}: trace-off front-end output must be byte-identical to seed"
        );
    }
}

/// The single-threaded runner keeps the contract at the API level:
/// trace-off results carry no cause stats and no recorder, and the
/// label carries no `/tr` tag.
#[test]
fn trace_off_runner_results_carry_no_trace_accounting() {
    for engine in engines() {
        let cfg = base(engine, 32 << 20);
        let r = run(&cfg).expect("run");
        assert!(
            r.cause.is_none(),
            "{engine}: trace off means no cause stats"
        );
        assert!(
            r.recorder.is_none(),
            "{engine}: trace off means no recorder"
        );
        // `/tr` must match as a whole tag — the device label's `/trim`
        // segment contains it as a prefix.
        let label = cfg.label();
        assert!(
            !label.ends_with("/tr") && !label.contains("/tr/"),
            "{engine}: default labels must not grow the trace tag: {label}"
        );
    }
}

/// The zero-cost claim: tracing observes without perturbing. A traced
/// run executes the same ops, moves the same bytes, and records the
/// same latency distribution as its untraced twin — only the label tag,
/// the cause attribution, and the recorder differ.
#[test]
fn trace_on_is_zero_cost_and_perturbs_only_the_report() {
    for engine in engines() {
        let plain_cfg = base(engine, 32 << 20);
        let mut traced_cfg = base(engine, 32 << 20);
        traced_cfg.trace = true;
        assert!(
            traced_cfg.label().ends_with("/tr"),
            "{engine}: traced labels must carry the tag: {}",
            traced_cfg.label()
        );
        let plain = run(&plain_cfg).expect("run");
        let traced = run(&traced_cfg).expect("run");
        assert_eq!(
            plain.ops_executed, traced.ops_executed,
            "{engine}: tracing must not change the op count"
        );
        assert_eq!(
            plain.host_bytes_written, traced.host_bytes_written,
            "{engine}: tracing must not change device writes"
        );
        assert_eq!(
            plain.host_bytes_read, traced.host_bytes_read,
            "{engine}: tracing must not change device reads"
        );
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(
                plain.latency.quantile(q),
                traced.latency.quantile(q),
                "{engine}: tracing must not change the latency distribution"
            );
        }
        let cause = traced.cause.expect("traced runs attribute device traffic");
        assert_eq!(
            cause.total_bytes_written(),
            traced.host_bytes_written,
            "{engine}: per-cause written bytes must sum to host writes"
        );
        assert_eq!(
            cause.total_bytes_read(),
            traced.host_bytes_read,
            "{engine}: per-cause read bytes must sum to host reads"
        );
        let recorder = traced.recorder.expect("traced runs keep their spans");
        assert!(
            !recorder.lock().is_empty(),
            "{engine}: a traced measured phase must record spans"
        );
    }
}

/// Sanity check of the other direction through the harness: tracing a
/// sharded run *does* perturb the rendered report — the label gains
/// `/tr` and the cause attribution appears — so the byte-identity above
/// is not a vacuous comparison.
#[test]
fn trace_on_perturbs_the_report() {
    for engine in engines() {
        let shape = ShardedRun::new(base(engine, 32 << 20), 2);
        let mut traced_shape = shape.clone();
        traced_shape.base.trace = true;
        let plain = run_sharded(&shape).expect("run");
        let traced = run_sharded(&traced_shape).expect("run");
        assert_ne!(
            plain.render(),
            traced.render(),
            "{engine}: an active recorder must show up in the report"
        );
        let text = traced.render();
        assert!(
            text.contains("/tr/") || text.contains("/tr\n") || text.contains("/tr "),
            "{engine}: label tag: {text}"
        );
        assert!(
            text.contains("cause: ") && text.contains("cause["),
            "{engine}: cause attribution must render: {text}"
        );
        let totals = traced.cause_totals().expect("cause totals");
        assert!(
            totals.total_bytes_written() + totals.total_bytes_read() > 0,
            "{engine}: a measured phase must move device bytes"
        );
    }
}
