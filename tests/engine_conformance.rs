//! Engine conformance: one behavioral specification, instantiated for
//! every engine in the registry.
//!
//! The suite resolves engines purely through
//! `ptsbench::core::EngineRegistry` — the only engine-specific line is
//! the `ptsbench::hashlog::register()` call, which is exactly how a
//! downstream crate adds an engine. If a new engine registers a
//! descriptor, it is automatically held to this spec.

use ptsbench::core::runner::{run, RunConfig};
use ptsbench::core::{EngineKind, EngineRegistry, EngineTuning, PtsError, WriteBatch};
use ptsbench::ssd::{DeviceConfig, DeviceProfile, Ssd, MINUTE};
use ptsbench::vfs::{Vfs, VfsOptions};

fn engines() -> Vec<EngineKind> {
    ptsbench::hashlog::register();
    EngineRegistry::all()
}

fn stack(bytes: u64) -> Vfs {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), bytes)).into_shared();
    Vfs::whole_device(ssd, VfsOptions::default())
}

fn tuning(bytes: u64) -> EngineTuning {
    EngineTuning::for_device(bytes)
}

#[test]
fn registry_exposes_all_three_engines() {
    let all = engines();
    assert!(
        all.len() >= 3,
        "expected lsm, btree and hashlog, got {all:?}"
    );
    for label in ["lsm", "btree", "hashlog"] {
        let kind = EngineRegistry::lookup(label).expect(label);
        assert_eq!(kind.label(), label);
        assert!(!kind.name().is_empty());
        assert!(kind.default_cpu_cost_ns() > 0);
    }
}

#[test]
fn put_get_delete_overwrite_spec() {
    for kind in engines() {
        let mut sys = kind.open(stack(64 << 20), &tuning(64 << 20)).expect("open");
        assert_eq!(sys.get(b"missing").expect("get"), None, "{kind:?}");
        sys.put(b"k1", b"v1").expect("put");
        sys.put(b"k2", b"v2").expect("put");
        sys.put(b"k1", b"v1-overwritten").expect("overwrite");
        assert_eq!(
            sys.get(b"k1").expect("get"),
            Some(b"v1-overwritten".to_vec()),
            "{kind:?}"
        );
        sys.delete(b"k1").expect("delete");
        assert_eq!(sys.get(b"k1").expect("get"), None, "{kind:?}");
        sys.delete(b"k1").expect("deletes are idempotent");
        sys.delete(b"never-existed").expect("delete of absent key");
        assert_eq!(
            sys.get(b"k2").expect("get"),
            Some(b"v2".to_vec()),
            "{kind:?}"
        );
        assert_eq!(sys.kind(), kind);
    }
}

#[test]
fn batch_apply_matches_individual_ops() {
    for kind in engines() {
        let mut individually = kind.open(stack(64 << 20), &tuning(64 << 20)).expect("open");
        let mut batched = kind.open(stack(64 << 20), &tuning(64 << 20)).expect("open");
        let mut batch = WriteBatch::new();
        for i in 0..200u32 {
            let k = format!("key{i:05}");
            let v = format!("value-{i}");
            individually.put(k.as_bytes(), v.as_bytes()).expect("put");
            batch.put(k.as_bytes(), v.as_bytes());
        }
        for i in (0..200u32).step_by(7) {
            let k = format!("key{i:05}");
            individually.delete(k.as_bytes()).expect("delete");
            batch.delete(k.as_bytes());
        }
        batched.apply_batch(&batch).expect("apply_batch");
        assert_eq!(
            individually.scan_to_vec(b"", None, 1000).expect("scan"),
            batched.scan_to_vec(b"", None, 1000).expect("scan"),
            "{kind:?}: batch must be equivalent to its individual ops"
        );
        assert_eq!(
            individually.stats().app_bytes_written,
            batched.stats().app_bytes_written,
            "{kind:?}: batch accounting must match"
        );
    }
}

#[test]
fn scan_streams_ordered_bounded_and_limited() {
    for kind in engines() {
        let mut sys = kind.open(stack(64 << 20), &tuning(64 << 20)).expect("open");
        for i in (0..300u32).rev() {
            sys.put(format!("key{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .expect("put");
        }
        sys.delete(b"key00010").expect("delete");

        // Bounds: [start, end), deleted keys excluded, ascending order.
        let items = sys
            .scan_to_vec(b"key00005", Some(b"key00015"), 100)
            .expect("scan");
        let keys: Vec<String> = items
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(
            keys,
            (5..15)
                .filter(|i| *i != 10)
                .map(|i| format!("key{i:05}"))
                .collect::<Vec<_>>(),
            "{kind:?}"
        );

        // Limit.
        assert_eq!(
            sys.scan_to_vec(b"", None, 7).expect("scan").len(),
            7,
            "{kind:?}"
        );

        // Streaming: the cursor yields incrementally and can be dropped
        // without draining the range.
        let mut cursor = sys.scan(b"", None, usize::MAX).expect("scan");
        let first = cursor.next().expect("item").expect("ok");
        assert_eq!(first.0, b"key00000".to_vec(), "{kind:?}");
        assert_eq!(cursor.take(5).count(), 5, "{kind:?}");
    }
}

#[test]
fn flush_then_recover_preserves_data() {
    for kind in engines() {
        let vfs = stack(64 << 20);
        {
            let mut sys = kind.open(vfs.clone(), &tuning(64 << 20)).expect("open");
            for i in 0..500u32 {
                sys.put(format!("key{i:05}").as_bytes(), format!("v{i}").as_bytes())
                    .expect("put");
            }
            sys.delete(b"key00042").expect("delete");
            sys.flush().expect("flush");
        }
        let mut sys = kind.recover(vfs, &tuning(64 << 20)).expect("recover");
        assert_eq!(
            sys.get(b"key00042").expect("get"),
            None,
            "{kind:?}: delete survives"
        );
        for i in (0..500u32).filter(|i| *i != 42).step_by(13) {
            assert_eq!(
                sys.get(format!("key{i:05}").as_bytes()).expect("get"),
                Some(format!("v{i}").into_bytes()),
                "{kind:?}: key {i} must survive recovery"
            );
        }
        sys.put(b"post-recovery", b"ok")
            .expect("put after recovery");
        assert_eq!(
            sys.get(b"post-recovery").expect("get"),
            Some(b"ok".to_vec()),
            "{kind:?}"
        );
    }
}

#[test]
fn out_of_space_maps_uniformly() {
    for kind in engines() {
        let mut sys = kind.open(stack(16 << 20), &tuning(16 << 20)).expect("open");
        let value = vec![7u8; 4096];
        let mut hit = None;
        for i in 0..20_000u32 {
            match sys.put(format!("key{i:06}").as_bytes(), &value) {
                Ok(()) => {}
                Err(e) => {
                    hit = Some(e);
                    break;
                }
            }
        }
        match hit {
            Some(PtsError::OutOfSpace) => {}
            Some(other) => panic!("{kind:?}: expected OutOfSpace, got {other}"),
            None => panic!("{kind:?}: 80 MB of puts must overflow a 16 MiB partition"),
        }
    }
}

#[test]
fn stats_are_uniform_across_engines() {
    for kind in engines() {
        let mut sys = kind.open(stack(64 << 20), &tuning(64 << 20)).expect("open");
        for i in 0..100u32 {
            sys.put(format!("key{i:05}").as_bytes(), &[1u8; 256])
                .expect("put");
        }
        sys.get(b"key00001").expect("get");
        sys.delete(b"key00002").expect("delete");
        sys.flush().expect("flush");
        let stats = sys.stats();
        assert_eq!(stats.puts, 100, "{kind:?}");
        assert_eq!(stats.gets, 1, "{kind:?}");
        assert_eq!(stats.deletes, 1, "{kind:?}");
        assert!(stats.app_bytes_written > 100 * 256, "{kind:?}");
        assert_eq!(sys.app_bytes_written(), stats.app_bytes_written, "{kind:?}");
        assert!(
            !stats.structural.is_empty(),
            "{kind:?}: structural summary required"
        );
        assert!(!stats.structural_summary().is_empty(), "{kind:?}");
    }
}

#[test]
fn errors_chain_their_engine_sources() {
    // Recovering from an empty filesystem is an engine-level failure
    // (nothing to recover) for every engine, and the native error must
    // be preserved through std::error::Error::source.
    for kind in engines() {
        let err = match kind.recover(stack(64 << 20), &tuning(64 << 20)) {
            Err(e) => e,
            Ok(_) => panic!("{kind:?}: recovering an empty filesystem must fail"),
        };
        match &err {
            PtsError::Engine { engine, source } => {
                assert_eq!(*engine, kind.label(), "{kind:?}");
                assert!(!source.to_string().is_empty());
            }
            other => panic!("{kind:?}: expected an engine error, got {other}"),
        }
        assert!(
            std::error::Error::source(&err).is_some(),
            "{kind:?}: source chain required"
        );
    }
}

#[test]
fn runner_drives_any_registered_engine() {
    // The acceptance criterion for the open API: the experiment runner
    // (untouched by the hashlog crate) drives the third engine purely
    // through its registry handle.
    let hashlog = ptsbench::hashlog::register();
    let r = run(&RunConfig {
        engine: hashlog,
        device_bytes: 48 << 20,
        duration: 30 * MINUTE,
        sample_window: 5 * MINUTE,
        ..RunConfig::default()
    })
    .expect("run");
    assert!(!r.out_of_space, "default dataset must fit");
    assert_eq!(r.samples.len(), 6, "30 min / 5 min windows");
    assert!(r.ops_executed > 100, "ops: {}", r.ops_executed);
    assert!(r.label.contains("hashlog"), "label: {}", r.label);
    // A log-structured store writes every update once (plus bounded GC
    // relocation): WA-A stays far below the LSM's.
    assert!(
        r.steady.wa_a >= 1.0 && r.steady.wa_a < 4.0,
        "hashlog WA-A: {}",
        r.steady.wa_a
    );
}

#[test]
fn sharded_harness_drives_any_registered_engine() {
    // Concurrency is part of the conformance bar: every registered
    // engine must survive the multi-client harness — two client
    // threads, two shared-nothing shards — and produce a merged report
    // with work on both shards.
    use ptsbench::core::ShardedRun;
    use ptsbench::harness::run_sharded;

    for kind in engines() {
        let sharded = ShardedRun::new(
            RunConfig {
                engine: kind,
                device_bytes: 32 << 20,
                duration: 10 * MINUTE,
                sample_window: 5 * MINUTE,
                ..RunConfig::default()
            },
            2,
        );
        let report = run_sharded(&sharded).expect("sharded run");
        assert_eq!(report.shards.len(), 2, "{kind:?}");
        assert_eq!(report.clients, 2, "{kind:?}");
        assert_eq!(report.out_of_space_shards(), 0, "{kind:?} must fit");
        for shard in &report.shards {
            assert!(
                shard.ops > 0,
                "{kind:?} {} executed no operations",
                shard.name
            );
        }
        assert_eq!(
            report.ops,
            report.shards.iter().map(|s| s.ops).sum::<u64>(),
            "{kind:?} merged ops must equal the per-shard sum"
        );
        assert_eq!(
            report.latency.count(),
            report.ops,
            "{kind:?} merged latency must cover every op"
        );
        assert!(
            report.render().contains(kind.label()),
            "{kind:?} report must carry the engine label"
        );
    }
}
