//! Multi-tenant conformance: a class-less configuration must be
//! invisible.
//!
//! The multi-tenant front-end follows the repo's layering contract:
//! every new knob has an explicit pass-through setting whose output is
//! byte-identical to the code that predates it. The defaults — a
//! uniform [`ClassPolicyMap`] (every lane the same policy, exactly the
//! old single `slo` field), `DispatchDiscipline::Fifo`, and an empty
//! tenant table — keep the dispatcher on the seed's eager
//! decide-at-submit path, so runs configured that way must reproduce
//! the pre-multi-tenant harness output **byte-identically at the
//! rendered level** — same labels, same numbers, no `mt` accounting
//! anywhere — for every registered engine.
//!
//! Like `tests/cache_conformance.rs`, the pin is against the **golden
//! snapshot** (`tests/golden/pr5_cache_off.txt`) captured from the
//! harness before either subsystem existed, so a regression in any
//! layer the front-end rework touched — the dispatcher, the completion
//! ordering, the report renderer — shows up as a byte diff against
//! history, not just against a sibling code path.

use ptsbench::core::frontend::{
    ClassPolicyMap, DispatchDiscipline, FrontendRun, SloPolicy, TenantSpec,
};
use ptsbench::core::registry::{EngineKind, EngineRegistry};
use ptsbench::core::runner::RunConfig;
use ptsbench::core::ReqClass;
use ptsbench::harness::run_frontend;
use ptsbench::ssd::{MINUTE, SECOND};
use ptsbench::workload::KeyDistribution;

/// Rendered harness output captured before the multi-tenant front-end
/// (and the read-path tier) existed.
const GOLDEN: &str = include_str!("golden/pr5_cache_off.txt");

fn engines() -> Vec<EngineKind> {
    ptsbench::hashlog::register();
    EngineRegistry::all()
}

/// One `@@@section@@@` block of the golden snapshot.
fn golden_section(name: &str) -> String {
    let header = format!("@@@{name}@@@\n");
    let start = GOLDEN
        .find(&header)
        .unwrap_or_else(|| panic!("golden section {name} missing"))
        + header.len();
    let end = GOLDEN[start..]
        .find("@@@")
        .expect("golden sections are terminated");
    GOLDEN[start..start + end].to_string()
}

/// The exact shape the snapshot was captured with.
fn base(engine: EngineKind) -> RunConfig {
    RunConfig {
        engine,
        device_bytes: 32 << 20,
        duration: 10 * MINUTE,
        sample_window: 5 * MINUTE,
        ..RunConfig::default()
    }
}

fn serving_shape(engine: EngineKind) -> FrontendRun {
    let mut cfg = FrontendRun::new(base(engine), 6);
    cfg.shards = 2;
    cfg.base.read_fraction = 0.5;
    cfg.base.distribution = KeyDistribution::Zipfian { theta: 0.9 };
    cfg
}

/// The tentpole guarantee: a front-end run whose multi-tenant knobs are
/// all at their explicit pass-through settings reproduces the
/// pre-multi-tenant golden output byte-for-byte, for every engine that
/// existed when the snapshot was taken.
#[test]
fn classless_frontend_runs_match_the_pre_mt_golden_output() {
    for engine in engines() {
        let mut cfg = serving_shape(engine);
        // Spell out every multi-tenant default explicitly: the uniform
        // policy map, FIFO dispatch, no tenants.
        cfg.slo = ClassPolicyMap::uniform(SloPolicy::None);
        cfg.discipline = DispatchDiscipline::Fifo;
        cfg.tenants = Vec::new();
        assert!(!cfg.mt_active(), "{engine}: these are the pass-throughs");
        let report = run_frontend(&cfg).expect("run");
        assert_eq!(
            report.render(),
            golden_section(&format!("frontend/{engine}")),
            "{engine}: class-less front-end output must be byte-identical to seed"
        );
        let text = report.render();
        assert!(
            !text.contains("mt:") && !text.contains("mt[") && !text.contains("/mt"),
            "{engine}: no multi-tenant accounting may appear when inactive: {text}"
        );
    }
}

/// A uniform *active* policy written through the `ClassPolicyMap` stays
/// byte-identical to the same policy written through the old
/// single-policy `From<SloPolicy>` conversion — the map is a
/// generalization, not a new behavior, until the lanes actually differ.
#[test]
fn uniform_policy_maps_match_the_single_policy_conversion() {
    let policy = SloPolicy::PredictedSojourn {
        deadline_ns: 2 * SECOND,
    };
    let mut via_into = serving_shape(EngineKind::lsm());
    via_into.slo = policy.into();
    let mut via_uniform = serving_shape(EngineKind::lsm());
    via_uniform.slo = ClassPolicyMap::uniform(policy);
    let a = run_frontend(&via_into).expect("run");
    let b = run_frontend(&via_uniform).expect("run");
    assert_eq!(a.render(), b.render());
    assert!(a.label.ends_with("/slo-ps2000ms"), "{}", a.label);
}

/// Sanity check of the other direction: each multi-tenant knob, alone,
/// perturbs the report — the label gains the `/mt` tag and the `mt`
/// accounting appears — so the byte-identity above is not a vacuous
/// comparison.
#[test]
fn active_mt_knobs_do_perturb_the_report() {
    let plain = run_frontend(&serving_shape(EngineKind::lsm())).expect("run");

    // A non-FIFO discipline alone.
    let mut wfq = serving_shape(EngineKind::lsm());
    wfq.discipline = DispatchDiscipline::WeightedFair { weights: [8, 1, 1] };
    let wfq_report = run_frontend(&wfq).expect("run");
    assert_ne!(plain.render(), wfq_report.render());
    assert!(wfq_report.label.contains("/mt"), "{}", wfq_report.label);
    assert!(wfq_report.render().contains("mt:"), "mt accounting renders");

    // A declared tenant table alone (even one uniform interactive
    // tenant: declaring tenants opts into per-tenant ledgers).
    let mut tenanted = serving_shape(EngineKind::lsm());
    tenanted.tenants = vec![TenantSpec::new(ReqClass::Interactive, 6)];
    let tenanted_report = run_frontend(&tenanted).expect("run");
    assert!(
        tenanted_report.label.contains("/mt"),
        "{}",
        tenanted_report.label
    );
    assert!(
        tenanted_report.render().contains("tenants: t0["),
        "tenant ledgers render: {}",
        tenanted_report.render()
    );

    // A non-uniform policy map alone.
    let mut split = serving_shape(EngineKind::lsm());
    split.slo =
        ClassPolicyMap::default().with(ReqClass::Batch, SloPolicy::QueueBound { max_pending: 2 });
    let split_report = run_frontend(&split).expect("run");
    assert!(split.mt_active());
    assert!(split_report.label.contains("/mt"), "{}", split_report.label);
}
