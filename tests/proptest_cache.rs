//! Property-based tests of the read-path acceleration tier:
//!
//! * engines serve byte-identical data with the cache and compression
//!   on or off — acceleration must never change *what* a read returns,
//!   only where the bytes come from;
//! * the TinyLFU sketch's halving never inflates an estimate;
//! * the block cache's resident bytes never exceed its budget;
//! * the compression container round-trips arbitrary payloads
//!   losslessly at every level.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ptsbench::cache::{BlockCache, Compression, CountMinSketch};
use ptsbench::hashlog::{HashLogDb, HashLogOptions};
use ptsbench::lsm::{LsmDb, LsmOptions};
use ptsbench::ssd::{DeviceConfig, DeviceProfile, Ssd};
use ptsbench::vfs::{Vfs, VfsOptions};

fn vfs() -> Vfs {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 48 << 20));
    Vfs::whole_device(ssd.into_shared(), VfsOptions::default())
}

#[derive(Debug, Clone)]
enum KvOp {
    Put(u16, u16),
    Delete(u16),
    Get(u16),
    Scan(u16, u8),
    Flush,
}

fn kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        6 => (0..200u16, 0..2_000u16).prop_map(|(k, v)| KvOp::Put(k, v)),
        2 => (0..200u16).prop_map(KvOp::Delete),
        4 => (0..200u16).prop_map(KvOp::Get),
        1 => (0..200u16, 1..20u8).prop_map(|(s, n)| KvOp::Scan(s, n)),
        1 => Just(KvOp::Flush),
    ]
}

fn key(i: u16) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

fn value(tag: u16, step: usize) -> Vec<u8> {
    format!("value-{tag}-{step}")
        .into_bytes()
        .repeat(1 + tag as usize % 4)
}

/// Replays `ops` against a model, asserting every read and scan result
/// matches; returns nothing — the assertions are the point.
fn drive_lsm(mut db: LsmDb, ops: &[KvOp]) {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for (step, op) in ops.iter().enumerate() {
        match op {
            KvOp::Put(k, v) => {
                let (k, v) = (key(*k), value(*v, step));
                db.put(&k, &v).expect("put");
                model.insert(k, v);
            }
            KvOp::Delete(k) => {
                let k = key(*k);
                db.delete(&k).expect("delete");
                model.remove(&k);
            }
            KvOp::Get(k) => {
                let k = key(*k);
                assert_eq!(db.get(&k).expect("get"), model.get(&k).cloned());
            }
            KvOp::Scan(s, n) => {
                let start = key(*s);
                let got: Vec<_> = db.scan_iter(&start, None, *n as usize).collect::<Vec<_>>();
                let want: Vec<_> = model
                    .range(start..)
                    .take(*n as usize)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, want);
            }
            KvOp::Flush => db.flush().expect("flush"),
        }
    }
    for (k, v) in &model {
        assert_eq!(db.get(k).expect("get"), Some(v.clone()), "final audit");
    }
}

fn drive_hashlog(mut db: HashLogDb, ops: &[KvOp]) {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for (step, op) in ops.iter().enumerate() {
        match op {
            KvOp::Put(k, v) => {
                let (k, v) = (key(*k), value(*v, step));
                db.put(&k, &v).expect("put");
                model.insert(k, v);
            }
            KvOp::Delete(k) => {
                let k = key(*k);
                db.delete(&k).expect("delete");
                model.remove(&k);
            }
            KvOp::Get(k) => {
                let k = key(*k);
                assert_eq!(db.get(&k).expect("get"), model.get(&k).cloned());
            }
            KvOp::Scan(s, n) => {
                let start = key(*s);
                let got = db.scan(&start, None, *n as usize).expect("scan");
                let want: Vec<_> = model
                    .range(start..)
                    .take(*n as usize)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, want);
            }
            KvOp::Flush => db.flush().expect("flush"),
        }
    }
    for (k, v) in &model {
        assert_eq!(db.get(k).expect("get"), Some(v.clone()), "final audit");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Acceleration never changes what a read returns: the LSM with a
    /// block cache and compression serves exactly the bytes the model
    /// (and therefore the uncached engine, pinned by `proptest_lsm`)
    /// serves, through flushes and compactions.
    #[test]
    fn accelerated_lsm_reads_match_the_model(
        ops in proptest::collection::vec(kv_op(), 1..200),
        budget in prop_oneof![Just(0u64), 16_384..(2u64 << 20)],
        level in 0..=9u8,
    ) {
        let opts = LsmOptions {
            cache_bytes: budget,
            compression: Compression::from_level(level),
            ..LsmOptions::small()
        };
        drive_lsm(LsmDb::open(vfs(), opts).expect("open"), &ops);
    }

    /// Same property for the hashlog's value/segment cache and
    /// whole-segment compression.
    #[test]
    fn accelerated_hashlog_reads_match_the_model(
        ops in proptest::collection::vec(kv_op(), 1..200),
        budget in prop_oneof![Just(0u64), 16_384..(2u64 << 20)],
        level in 0..=9u8,
    ) {
        let opts = HashLogOptions {
            cache_bytes: budget,
            compression: Compression::from_level(level),
            ..HashLogOptions::small()
        };
        drive_hashlog(HashLogDb::open(vfs(), opts).expect("open"), &ops);
    }

    /// Halving ages popularity; it must never *raise* any estimate.
    #[test]
    fn sketch_halving_never_inflates_estimates(
        keys in proptest::collection::vec(any::<u64>(), 1..400),
        hint in 64..4096usize,
    ) {
        let mut sketch = CountMinSketch::new(hint);
        for &k in &keys {
            sketch.record(k);
        }
        let before: Vec<u8> = keys.iter().map(|&k| sketch.estimate(k)).collect();
        sketch.halve();
        for (&k, &b) in keys.iter().zip(&before) {
            let after = sketch.estimate(k);
            prop_assert!(
                after <= b,
                "halving inflated estimate of {k}: {b} -> {after}"
            );
            prop_assert!(after >= b / 2, "halving lost more than half: {b} -> {after}");
        }
    }

    /// The byte budget is a hard invariant across arbitrary access
    /// streams, whatever the admission gate decides.
    #[test]
    fn cache_bytes_never_exceed_budget(
        accesses in proptest::collection::vec(
            (0..64u64, 0..8u64, 1..4096usize, 0..4u8), 1..500),
        budget in 1024..(64u64 << 10),
    ) {
        let mut cache = BlockCache::new(budget);
        for (tag, offset, len, touches) in accesses {
            let cache_key = (tag, offset * 4096);
            for _ in 0..touches {
                cache.get(&cache_key);
            }
            cache.insert(cache_key, std::sync::Arc::new(vec![0xCD; len]), len as u64);
            prop_assert!(
                cache.used_bytes() <= cache.budget(),
                "{} resident bytes over the {} budget",
                cache.used_bytes(),
                cache.budget()
            );
        }
        let s = cache.stats();
        prop_assert!(
            s.admissions >= cache.len() as u64,
            "every resident entry was admitted"
        );
    }

    /// The container round-trips arbitrary payloads losslessly at every
    /// level, and never reports a body larger than stored-mode allows.
    #[test]
    fn compression_round_trips_losslessly(
        raw in proptest::collection::vec(any::<u8>(), 0..8192),
        level in 1..=9u8,
    ) {
        let codec = Compression::from_level(level);
        let encoded = codec.encode(&raw);
        prop_assert!(
            encoded.len() <= raw.len() + 8,
            "container may add only its 8-byte header"
        );
        let decoded = Compression::decode(&encoded).expect("well-formed container");
        prop_assert_eq!(decoded, raw);
    }

    /// Compressible payloads actually shrink (the codec is not a
    /// stored-only placebo), and the level knob is monotone in cost
    /// accounting.
    #[test]
    fn repetitive_payloads_shrink(chunk in proptest::collection::vec(any::<u8>(), 16..64)) {
        let raw = chunk.repeat(64);
        let codec = Compression::from_level(3);
        let encoded = codec.encode(&raw);
        prop_assert!(
            encoded.len() < raw.len() / 2,
            "64x-repeated data must compress: {} -> {}",
            raw.len(),
            encoded.len()
        );
        prop_assert_eq!(Compression::decode(&encoded).expect("decode"), raw);
        prop_assert!(codec.encode_cost_ns(raw.len()) > Compression::decode_cost_ns(raw.len()));
    }
}
