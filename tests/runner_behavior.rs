//! The experiment runner's contract: well-formed samples, determinism,
//! correct failure reporting, and metrics that cross-check against the
//! raw device counters.

use ptsbench::core::runner::{run, RunConfig};
use ptsbench::core::EngineKind;
use ptsbench::metrics::CusumDetector;
use ptsbench::ssd::MINUTE;
use ptsbench::workload::KeyDistribution;

fn quick(engine: EngineKind) -> RunConfig {
    RunConfig {
        engine,
        device_bytes: 48 << 20,
        duration: 50 * MINUTE,
        sample_window: 5 * MINUTE,
        ..RunConfig::default()
    }
}

#[test]
fn samples_are_well_formed() {
    for engine in [EngineKind::lsm(), EngineKind::btree()] {
        let r = run(&quick(engine)).expect("run");
        assert_eq!(r.samples.len(), 10, "{engine:?}: 50 min / 5 min windows");
        let mut prev_t = 0;
        for s in &r.samples {
            assert!(s.t > prev_t, "window times must increase");
            prev_t = s.t;
            assert!(s.kv_kops >= 0.0);
            assert!(s.device_write_mbps >= 0.0);
            assert!(s.wa_a >= 1.0, "WA-A below 1 is impossible: {}", s.wa_a);
            assert!(
                s.wa_d >= 1.0 - 1e-9,
                "WA-D below 1 is impossible: {}",
                s.wa_d
            );
            assert!(s.space_amp >= 0.9, "space amp {} nonsensical", s.space_amp);
            assert!((0.0..=1.0).contains(&s.device_utilization));
        }
        assert!(r.ops_executed > 0);
        assert_eq!(r.latency.count(), r.ops_executed);
        assert!(r.dataset_bytes > 0);
        assert!(r.steady.end_to_end_wa >= r.steady.wa_a, "e2e includes WA-D");
    }
}

#[test]
fn identical_configs_reproduce_identical_results() {
    let cfg = quick(EngineKind::lsm());
    let a = run(&cfg).expect("run");
    let b = run(&cfg).expect("run");
    assert_eq!(a.ops_executed, b.ops_executed);
    assert_eq!(a.disk_used_bytes, b.disk_used_bytes);
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x, y, "samples must be bit-identical");
    }
}

#[test]
fn different_seeds_change_the_op_stream_not_the_shape() {
    let a = run(&RunConfig {
        seed: 1,
        ..quick(EngineKind::lsm())
    })
    .expect("run");
    let b = run(&RunConfig {
        seed: 2,
        ..quick(EngineKind::lsm())
    })
    .expect("run");
    // Different ops, same macroscopic behaviour (within 30%).
    assert_ne!(a.ops_executed, b.ops_executed);
    let rel = (a.steady.wa_a - b.steady.wa_a).abs() / a.steady.wa_a;
    assert!(
        rel < 0.3,
        "WA-A should be seed-insensitive, differs by {rel}"
    );
}

#[test]
fn oversized_dataset_fails_cleanly() {
    // A 97% dataset cannot survive LSM space amplification: the run must
    // end in out-of-space, either during load or in the update phase,
    // without panicking.
    let r = run(&RunConfig {
        dataset_fraction: 0.97,
        ..quick(EngineKind::lsm())
    })
    .expect("run");
    assert!(r.out_of_space);
    if r.failed_during_load {
        assert!(
            r.samples.is_empty(),
            "no measured phase after a failed load"
        );
    } else {
        assert!(r.disk_used_bytes > 0, "usage recorded up to the failure");
    }
}

#[test]
fn zipfian_workload_runs_and_skews_the_trace() {
    let uniform = run(&RunConfig {
        trace_lba: true,
        ..quick(EngineKind::btree())
    })
    .expect("run");
    let zipf = run(&RunConfig {
        distribution: KeyDistribution::Zipfian { theta: 0.99 },
        trace_lba: true,
        ..quick(EngineKind::btree())
    })
    .expect("run");
    // Skewed updates concentrate leaf rewrites: the hottest LBAs absorb
    // a larger share of writes than under uniform access.
    let hot_share = |r: &ptsbench::core::runner::RunResult| {
        let cdf = r.lba_cdf.as_ref().expect("traced");
        cdf.iter()
            .find(|(x, _)| *x >= 0.05)
            .expect("x=0.05 sample")
            .1
    };
    assert!(
        hot_share(&zipf) > hot_share(&uniform),
        "zipfian hot-5% share {} must exceed uniform {}",
        hot_share(&zipf),
        hot_share(&uniform)
    );
}

#[test]
fn cusum_declares_steady_state_on_runner_output() {
    // A long B+Tree run is the steadiest system we have: CUSUM must find
    // a steady region.
    let r = run(&RunConfig {
        duration: 100 * MINUTE,
        ..quick(EngineKind::btree())
    })
    .expect("run");
    let tput = r.throughput_series();
    let detector = CusumDetector::default();
    assert!(
        detector.steady_from(&tput.values()).is_some(),
        "B+Tree throughput should reach steady state: {:?}",
        tput.values()
    );
}

#[test]
fn adaptive_runs_stop_early_once_steady() {
    // The §4.1 guideline as an executable policy: with
    // `stop_when_steady`, a long-budget B+Tree run ends as soon as CUSUM
    // declares throughput steady and host writes pass 3x capacity.
    let budget = RunConfig {
        duration: 600 * MINUTE,
        stop_when_steady: true,
        ..quick(EngineKind::btree())
    };
    let adaptive = run(&budget).expect("run");
    assert!(
        adaptive.samples.len() < 120,
        "adaptive run should stop well before the 600-minute budget, ran {} windows",
        adaptive.samples.len()
    );
    assert!(
        adaptive.samples.len() >= 6,
        "needs enough windows to judge steadiness"
    );
    assert!(
        adaptive.steady.three_times_capacity,
        "must not stop before the 3x rule"
    );
}

#[test]
fn mixed_workload_reads_hit_the_device() {
    let r = run(&RunConfig {
        read_fraction: 0.5,
        ..quick(EngineKind::btree())
    })
    .expect("run");
    let reads: f64 = r.samples.iter().map(|s| s.device_read_mbps).sum();
    assert!(reads > 0.0, "a 50:50 workload must generate device reads");
}
