//! Recovery through the full stack: both engines survive a simulated
//! crash on the same shared device, and the device-level accounting
//! stays consistent across the restart.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ptsbench::btree::{BTreeDb, BTreeOptions};
use ptsbench::lsm::{LsmDb, LsmOptions};
use ptsbench::ssd::{DeviceConfig, DeviceProfile, Ssd};
use ptsbench::vfs::{Vfs, VfsOptions};

fn key(i: u32) -> Vec<u8> {
    format!("key{i:08}").into_bytes()
}

#[test]
fn lsm_recovery_preserves_device_state() {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 48 << 20)).into_shared();
    let vfs = Vfs::whole_device(ssd.clone(), VfsOptions::default());
    let mut rng = SmallRng::seed_from_u64(4);
    {
        let mut db = LsmDb::open(vfs.clone(), LsmOptions::small()).expect("open");
        for _ in 0..4_000 {
            let i = rng.gen_range(0..900u32);
            db.put(&key(i), &[3u8; 1500]).expect("put");
        }
        db.flush().expect("flush");
    }
    let mapped_before = ssd.lock().mapped_pages();
    let clock_before = ssd.lock().clock().now();

    let mut db = LsmDb::recover(vfs.clone(), LsmOptions::small()).expect("recover");
    // Recovery itself does I/O (manifest, indexes, WAL) and therefore
    // consumes simulated time.
    assert!(ssd.lock().clock().now() >= clock_before);
    // No device pages were lost or trimmed by recovery under nodiscard.
    assert!(ssd.lock().mapped_pages() >= mapped_before);

    // Recovered database serves reads and accepts writes.
    let mut found = 0;
    for i in 0..900u32 {
        if db.get(&key(i)).expect("get").is_some() {
            found += 1;
        }
    }
    assert!(found > 500, "most keys must survive, found {found}");
    db.put(b"post-crash", b"ok").expect("put");
    assert_eq!(db.get(b"post-crash").expect("get"), Some(b"ok".to_vec()));
}

#[test]
fn btree_recovery_after_heavy_churn() {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 48 << 20)).into_shared();
    let vfs = Vfs::whole_device(ssd.clone(), VfsOptions::default());
    let mut rng = SmallRng::seed_from_u64(8);
    let mut live = std::collections::BTreeMap::new();
    {
        let mut db = BTreeDb::open(vfs.clone(), BTreeOptions::small()).expect("open");
        for step in 0..5_000u32 {
            let i = rng.gen_range(0..700u32);
            if rng.gen_bool(0.8) {
                let v = format!("v{step}").into_bytes();
                db.put(&key(i), &v).expect("put");
                live.insert(i, v);
            } else {
                db.delete(&key(i)).expect("delete");
                live.remove(&i);
            }
        }
        db.checkpoint().expect("checkpoint");
        // A journaled tail past the checkpoint.
        db.put(&key(10_000), b"tail").expect("put");
        db.sync_journal().expect("sync");
    }
    let mut db = BTreeDb::recover(vfs, BTreeOptions::small()).expect("recover");
    db.verify();
    for (i, v) in &live {
        let got = db.get(&key(*i)).expect("get");
        assert_eq!(got.as_ref(), Some(v), "key {i}");
    }
    assert_eq!(db.get(&key(10_000)).expect("get"), Some(b"tail".to_vec()));
}

#[test]
fn recovered_engines_keep_their_wa_signatures() {
    // After recovery, the engines' device-level behaviour is unchanged:
    // the B+Tree still updates in place (stable mapped-page count), the
    // LSM still churns.
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 48 << 20)).into_shared();
    let vfs = Vfs::whole_device(ssd.clone(), VfsOptions::default());
    {
        let mut db = BTreeDb::open(vfs.clone(), BTreeOptions::small()).expect("open");
        for i in 0..1_500u32 {
            db.put(&key(i), &[0u8; 64]).expect("put");
        }
        db.checkpoint().expect("checkpoint");
    }
    let mut db = BTreeDb::recover(vfs, BTreeOptions::small()).expect("recover");
    let mapped_before = ssd.lock().mapped_pages();
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..3_000 {
        let i = rng.gen_range(0..1_500u32);
        db.put(&key(i), &[1u8; 64]).expect("put");
    }
    db.checkpoint().expect("checkpoint");
    let mapped_after = ssd.lock().mapped_pages();
    assert!(
        mapped_after <= mapped_before + 64,
        "recovered B+Tree must still write in place: {mapped_before} -> {mapped_after}"
    );
}
