//! The methodology layer end-to-end: pitfall evaluations produce
//! well-formed reports, the cost models compose with measured runs, and
//! the paper's headline numeric relationships hold on the simulated
//! stack at test scale.

use ptsbench::core::costmodel::{fig6c_heatmap, model_from_run};
use ptsbench::core::pitfalls::{p1_short_tests, p2_wad, PitfallOptions};
use ptsbench::core::runner::{run, RunConfig};
use ptsbench::core::state::DriveState;
use ptsbench::core::EngineKind;
use ptsbench::metrics::wa::{space_amplification, steady_state_by_host_writes};
use ptsbench::ssd::MINUTE;

#[test]
fn pitfall_reports_are_well_formed() {
    let opts = PitfallOptions::quick();
    let p1 = p1_short_tests::evaluate(&opts);
    let report = p1.report();
    assert_eq!(report.id, 1);
    assert!(!report.verdicts.is_empty());
    assert!(report.rendered.contains("time(min)"));
    let text = report.to_text();
    assert!(text.contains("Pitfall 1"));
    // Pitfall 2 reuses the same runs.
    let p2 = p2_wad::from_pitfall1(p1);
    let r2 = p2.report();
    assert_eq!(r2.id, 2);
    assert!(r2.rendered.contains("WA-A"));
}

#[test]
fn end_to_end_wa_relationship_holds() {
    // The §4.2 argument: end-to-end WA = WA-A x WA-D, and ranking by
    // WA-A alone understates the LSM/B+Tree efficiency gap.
    let opts = PitfallOptions {
        duration: 120 * MINUTE,
        ..PitfallOptions::quick()
    };
    let p = p2_wad::evaluate(&opts);
    let lsm = p.lsm.steady;
    let bt = p.btree.steady;
    assert!((lsm.end_to_end_wa - lsm.wa_a * lsm.wa_d).abs() < 1e-6);
    assert!(lsm.wa_a > bt.wa_a, "LSM must have higher WA-A");
    let e2e_gap = lsm.end_to_end_wa / bt.end_to_end_wa;
    let waa_gap = lsm.wa_a / bt.wa_a;
    assert!(
        e2e_gap > waa_gap,
        "WA-D must widen the gap: {e2e_gap} vs {waa_gap}"
    );
}

#[test]
fn cost_model_composes_with_measured_runs() {
    let base = RunConfig {
        device_bytes: 48 << 20,
        duration: 60 * MINUTE,
        sample_window: 5 * MINUTE,
        drive_state: DriveState::Trimmed,
        ..RunConfig::default()
    };
    let lsm = run(&RunConfig {
        engine: EngineKind::lsm(),
        ..base.clone()
    })
    .expect("run");
    let btree = run(&RunConfig {
        engine: EngineKind::btree(),
        ..base
    })
    .expect("run");
    let reference = 400u64 << 30;

    let m_lsm = model_from_run("lsm", &lsm, reference);
    let m_bt = model_from_run("btree", &btree, reference);
    // The LSM is faster per instance; the B+Tree denser per drive.
    assert!(m_lsm.per_instance_ops > m_bt.per_instance_ops);
    assert!(m_bt.per_instance_data_bytes > m_lsm.per_instance_data_bytes);

    let h = fig6c_heatmap(&lsm, &btree, reference);
    // Every grid point has a winner (or a tie); drives counts are sane.
    for row in &h.drives {
        for &(a, b) in row {
            assert!(a >= 1 && b >= 1);
        }
    }
}

#[test]
fn space_amp_and_steady_state_helpers_match_runs() {
    let r = run(&RunConfig {
        engine: EngineKind::lsm(),
        device_bytes: 48 << 20,
        duration: 100 * MINUTE,
        sample_window: 10 * MINUTE,
        ..RunConfig::default()
    })
    .expect("run");
    let amp = space_amplification(r.disk_used_bytes, r.dataset_bytes);
    assert!((amp - r.space_amplification()).abs() < 1e-9);
    assert!(amp > 1.0, "LSM must amplify space");
    // The 3x-capacity rule of thumb agrees with the steady summary flag.
    let host_bytes = (r.samples.iter().map(|s| s.device_write_mbps).sum::<f64>()
        / r.samples.len() as f64) as u64; // MB/s scale only; flag checked directly:
    let _ = host_bytes;
    assert_eq!(
        r.steady.three_times_capacity,
        steady_state_by_host_writes(
            if r.steady.three_times_capacity {
                3 * (48 << 20)
            } else {
                0
            },
            48 << 20,
            3.0
        )
    );
}

#[test]
fn engine_labels_and_names_are_stable() {
    assert_eq!(EngineKind::lsm().label(), "lsm");
    assert_eq!(EngineKind::btree().label(), "btree");
    assert!(EngineKind::lsm().name().contains("RocksDB"));
    assert!(EngineKind::btree().name().contains("WiredTiger"));
}
