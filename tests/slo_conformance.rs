//! SLO conformance: an *inactive* admission policy must be invisible.
//!
//! The admission-control subsystem follows the repo's layering
//! contract: every new knob has an explicit pass-through setting whose
//! output is byte-identical to the code that predates it.
//! `SloPolicy::None` (the default) and a `QueueBound` at
//! `SloPolicy::UNBOUNDED` can never reject a request, so a front-end
//! run configured with either must reproduce the policy-free
//! `run_frontend` report **byte-identically at the rendered level** —
//! same label, same queue-delay and load lines, no `slo` accounting
//! anywhere — for every registered engine, including hashed sharding
//! and engine-level queue depth above 1. The suite resolves engines
//! purely through the registry, so a newly registered engine is
//! automatically held to the same spec.

use ptsbench::core::frontend::{FrontendRun, SloPolicy};
use ptsbench::core::registry::{EngineKind, EngineRegistry};
use ptsbench::core::runner::RunConfig;
use ptsbench::core::sharded::{ShardedRun, Sharding};
use ptsbench::harness::{run_frontend, run_sharded};
use ptsbench::ssd::{MINUTE, SECOND};
use ptsbench::workload::{ArrivalSpec, KeyDistribution};

fn engines() -> Vec<EngineKind> {
    ptsbench::hashlog::register();
    EngineRegistry::all()
}

/// Small enough for debug-mode tests: 16 MiB per shard (the SSD1
/// geometry floor), short measured phase.
fn base(engine: EngineKind, total_bytes: u64) -> RunConfig {
    RunConfig {
        engine,
        device_bytes: total_bytes,
        duration: 10 * MINUTE,
        sample_window: 5 * MINUTE,
        ..RunConfig::default()
    }
}

/// A serving shape that actually queues (fan-in over fewer shards,
/// Zipfian skew), so the equivalence is tested where the policy would
/// have something to do if it were active.
fn serving_shape(engine: EngineKind) -> FrontendRun {
    let mut cfg = FrontendRun::new(base(engine, 32 << 20), 6);
    cfg.shards = 2;
    cfg.base.read_fraction = 0.5;
    cfg.base.distribution = KeyDistribution::Zipfian { theta: 0.9 };
    cfg
}

/// The tentpole guarantee: for every registered engine, a fan-in
/// serving run under `SloPolicy::None` and under an infinite
/// `QueueBound` render byte-identical reports — and both match the
/// exact output the pre-SLO front-end produced for this shape (no
/// `slo` lines, unchanged label).
#[test]
fn unbounded_queue_bound_diffs_empty_against_no_policy_for_every_engine() {
    for engine in engines() {
        let plain = run_frontend(&serving_shape(engine)).expect("run");
        let mut unbounded_cfg = serving_shape(engine);
        unbounded_cfg.slo = SloPolicy::QueueBound {
            max_pending: SloPolicy::UNBOUNDED,
        }
        .into();
        let unbounded = run_frontend(&unbounded_cfg).expect("run");
        assert_eq!(
            plain.render(),
            unbounded.render(),
            "{engine}: an unbounded queue bound must be byte-identical to no policy"
        );
        let text = plain.render();
        assert!(
            !text.contains("slo"),
            "{engine}: inactive policies must attach no SLO accounting: {text}"
        );
        assert!(
            text.contains("queue delay ns:"),
            "{engine}: the serving metrics themselves must still be present"
        );
    }
}

/// The equivalence holds under hashed sharding and through the
/// engines' own asynchronous read paths (engine-level queue depth
/// above 1): the admission check sits in the dispatcher, above both.
#[test]
fn inactive_policies_survive_hashed_sharding_and_engine_queue_depth() {
    for engine in engines() {
        let mut plain_cfg = serving_shape(engine);
        plain_cfg.sharding = Sharding::Hashed;
        plain_cfg.base.queue_depth = 8;
        let mut unbounded_cfg = plain_cfg.clone();
        unbounded_cfg.slo = SloPolicy::QueueBound {
            max_pending: SloPolicy::UNBOUNDED,
        }
        .into();
        let plain = run_frontend(&plain_cfg).expect("run");
        let unbounded = run_frontend(&unbounded_cfg).expect("run");
        assert_eq!(
            plain.render(),
            unbounded.render(),
            "{engine}: hashed + engine QD>1 must not perturb the equivalence"
        );
        assert!(plain.render().contains("/hash"), "{engine}");
        assert!(
            plain.render().contains("qd[submitted="),
            "{engine}: engine-level depth metrics must be present"
        );
    }
}

/// The conformance chain still reaches the sharded harness: the
/// depth-1 conformant shape with an inactive policy reproduces
/// `run_sharded` byte-identically (the PR 4 guarantee, now with the
/// policy field in the configuration).
#[test]
fn conformant_shape_with_inactive_policy_still_matches_run_sharded() {
    for engine in engines() {
        let direct = run_sharded(&ShardedRun::new(base(engine, 32 << 20), 2)).expect("sharded run");
        let mut served_cfg = FrontendRun::conformant(base(engine, 32 << 20), 2);
        served_cfg.slo = SloPolicy::QueueBound {
            max_pending: SloPolicy::UNBOUNDED,
        }
        .into();
        assert!(served_cfg.is_conformant());
        let served = run_frontend(&served_cfg).expect("frontend run");
        assert_eq!(
            direct.render(),
            served.render(),
            "{engine}: the depth-1 equivalence must hold with an inactive policy"
        );
    }
}

/// Sanity check of the other direction: an *active* policy on the same
/// shape does change the report — the label gains the policy tag and
/// the SLO accounting appears — so the byte-identity above is not a
/// vacuous comparison.
#[test]
fn active_policies_do_perturb_the_report() {
    let mut cfg = serving_shape(EngineKind::lsm());
    cfg.slo = SloPolicy::PredictedSojourn {
        deadline_ns: 2 * SECOND,
    }
    .into();
    let report = run_frontend(&cfg).expect("run");
    assert!(report.label.ends_with("/slo-ps2000ms"), "{}", report.label);
    let totals = report.slo_totals().expect("slo accounting");
    assert_eq!(totals.offered, totals.admitted + totals.rejected);
    assert!(report.render().contains("slo: offered="));

    let plain = run_frontend(&serving_shape(EngineKind::lsm())).expect("run");
    assert_ne!(plain.render(), report.render());
}

/// Policy-free behavior is also pinned against arrival-process shape:
/// an open-loop run with `SloPolicy::None` and one with the unbounded
/// bound agree byte-for-byte (arrival handling and admission control
/// are independent code paths).
#[test]
fn open_loop_runs_agree_too() {
    let shape = || {
        let mut cfg = FrontendRun::new(base(EngineKind::lsm(), 32 << 20), 4);
        cfg.shards = 2;
        cfg.arrival = ArrivalSpec::OpenPoisson {
            mean_interarrival_ns: 2 * SECOND,
        };
        cfg
    };
    let plain = run_frontend(&shape()).expect("run");
    let mut unbounded_cfg = shape();
    unbounded_cfg.slo = SloPolicy::QueueBound {
        max_pending: SloPolicy::UNBOUNDED,
    }
    .into();
    let unbounded = run_frontend(&unbounded_cfg).expect("run");
    assert_eq!(plain.render(), unbounded.render());
}
