//! Maintenance conformance: *disabled* background maintenance must be
//! invisible.
//!
//! The background-maintenance subsystem follows the repo's layering
//! contract: every new knob has an explicit pass-through setting whose
//! output is byte-identical to the code that predates it.
//! `MaintConfig::default()` (`enabled = false`) keeps every engine on
//! its seed inline flush/compaction/GC/checkpoint paths, so runs
//! configured that way must reproduce the pre-maintenance harness
//! output **byte-identically at the rendered level** — same labels,
//! same numbers, no `maint` accounting anywhere — for every registered
//! engine, across the sharded driver and the serving front-end.
//!
//! Like `cache_conformance`, this pins against the golden snapshot
//! (`tests/golden/pr5_cache_off.txt`) captured before either subsystem
//! existed, so a regression in *any* layer maintenance touched —
//! engine write paths, the WAL, options, the runner, the report
//! renderer — shows up as a byte diff against history.

use ptsbench::core::frontend::FrontendRun;
use ptsbench::core::registry::{EngineKind, EngineRegistry};
use ptsbench::core::runner::{run, RunConfig};
use ptsbench::core::sharded::ShardedRun;
use ptsbench::harness::{run_frontend, run_frontend_with_results, run_sharded};
use ptsbench::maint::MaintConfig;
use ptsbench::ssd::MINUTE;
use ptsbench::workload::KeyDistribution;

/// Rendered harness output captured before the maintenance subsystem
/// (and the cache tier) landed.
const GOLDEN: &str = include_str!("golden/pr5_cache_off.txt");

fn engines() -> Vec<EngineKind> {
    ptsbench::hashlog::register();
    EngineRegistry::all()
}

/// One `@@@section@@@` block of the golden snapshot.
fn golden_section(name: &str) -> String {
    let header = format!("@@@{name}@@@\n");
    let start = GOLDEN
        .find(&header)
        .unwrap_or_else(|| panic!("golden section {name} missing"))
        + header.len();
    let end = GOLDEN[start..]
        .find("@@@")
        .expect("golden sections are terminated");
    GOLDEN[start..start + end].to_string()
}

/// The exact shapes the snapshot was captured with.
fn base(engine: EngineKind, total_bytes: u64) -> RunConfig {
    RunConfig {
        engine,
        device_bytes: total_bytes,
        duration: 10 * MINUTE,
        sample_window: 5 * MINUTE,
        ..RunConfig::default()
    }
}

fn serving_shape(engine: EngineKind) -> FrontendRun {
    let mut cfg = FrontendRun::new(base(engine, 32 << 20), 6);
    cfg.shards = 2;
    cfg.base.read_fraction = 0.5;
    cfg.base.distribution = KeyDistribution::Zipfian { theta: 0.9 };
    cfg
}

/// The tentpole guarantee: with maintenance off (the default), today's
/// sharded harness reproduces the pre-maintenance golden output
/// byte-for-byte for every engine.
#[test]
fn maint_off_sharded_runs_match_the_golden_output() {
    for engine in engines() {
        let name = format!("sharded/{engine}");
        let report = run_sharded(&ShardedRun::new(base(engine, 32 << 20), 2)).expect("run");
        assert_eq!(
            report.render(),
            golden_section(&name),
            "{engine}: maintenance-off sharded output must be byte-identical to seed"
        );
        assert!(
            !report.render().contains("maint"),
            "{engine}: no maintenance accounting may appear with the subsystem off"
        );
    }
}

/// The same pin through the serving front-end (fan-in, Zipfian mix —
/// the shape where deferred maintenance would matter most if it were
/// on).
#[test]
fn maint_off_frontend_runs_match_the_golden_output() {
    for engine in engines() {
        let name = format!("frontend/{engine}");
        let report = run_frontend(&serving_shape(engine)).expect("run");
        assert_eq!(
            report.render(),
            golden_section(&name),
            "{engine}: maintenance-off front-end output must be byte-identical to seed"
        );
    }
}

/// The single-threaded runner keeps the contract at the API level:
/// maintenance-off results carry no maintenance accounting and an
/// unchanged label.
#[test]
fn maint_off_runner_results_carry_no_maint_accounting() {
    for engine in engines() {
        let cfg = base(engine, 32 << 20);
        let r = run(&cfg).expect("run");
        assert!(
            r.maint.is_none(),
            "{engine}: maintenance off means no stats"
        );
        assert!(
            !cfg.label().contains("/bg"),
            "{engine}: default labels must not grow the background tag: {}",
            cfg.label()
        );
    }
}

/// Sanity check of the other direction: turning maintenance on *does*
/// perturb the report — the label gains the `/bg` tag, the maintenance
/// footer appears, every shard carries stats — so the byte-identity
/// above is not a vacuous comparison. And two background runs agree
/// with each other byte-for-byte (run-twice determinism at test
/// scale; `fig_stall` re-asserts it at figure scale).
#[test]
fn maint_on_perturbs_the_report_deterministically() {
    for engine in engines() {
        let mut shape = serving_shape(engine);
        shape.base.maint = MaintConfig::enabled();
        let outcome = run_frontend_with_results(&shape).expect("run");
        let text = outcome.report.render();
        assert!(text.contains("/bg"), "{engine}: label tag: {text}");
        assert!(
            text.contains("maint: jobs=") && text.contains("maint["),
            "{engine}: maintenance accounting must render: {text}"
        );
        assert_ne!(
            text,
            golden_section(&format!("frontend/{engine}")),
            "{engine}: active maintenance must show up in the report"
        );
        for (i, r) in outcome.shard_results.iter().enumerate() {
            let stats = r.maint.expect("background shards carry stats");
            assert_eq!(
                stats.jobs, stats.installs,
                "{engine} shard{i}: each job installs exactly once"
            );
        }
        let again = run_frontend_with_results(&shape).expect("run");
        assert_eq!(
            text,
            again.report.render(),
            "{engine}: background-mode reports must be deterministic"
        );
    }
}
