//! Latency conformance: the timing behavior of every layer of the
//! serving stack, pinned for every registered engine.
//!
//! PR 3 established the depth-1 equivalence guarantee at the device:
//! an `IoQueue` of depth 1 reproduces the synchronous device calls
//! byte-identically. This suite extends that guarantee up through the
//! new serving layer — a front-end run in its conformance shape
//! (`FrontendRun::conformant`: bound clients, closed loop, zero think
//! time, dispatcher depth 1) must reproduce the direct
//! `Experiment`-driven sharded harness **byte-identically at the
//! rendered-report level**, for each engine in the registry. The suite
//! resolves engines purely through the registry, so a newly registered
//! engine is automatically held to the same timing spec.

use ptsbench::core::frontend::FrontendRun;
use ptsbench::core::registry::{EngineKind, EngineRegistry};
use ptsbench::core::runner::{run, RunConfig};
use ptsbench::core::sharded::{ShardedRun, Sharding};
use ptsbench::harness::{run_frontend, run_frontend_with_results, run_sharded_with_results};
use ptsbench::ssd::MINUTE;

fn engines() -> Vec<EngineKind> {
    ptsbench::hashlog::register();
    EngineRegistry::all()
}

/// Small enough for debug-mode tests: 16 MiB per shard (the SSD1
/// geometry floor), short measured phase.
fn base(engine: EngineKind, total_bytes: u64) -> RunConfig {
    RunConfig {
        engine,
        device_bytes: total_bytes,
        duration: 10 * MINUTE,
        sample_window: 5 * MINUTE,
        ..RunConfig::default()
    }
}

/// The tentpole guarantee: a QD=1 front-end run reproduces the direct
/// `Experiment` path byte-identically — same label, same per-shard op
/// counts, latency quantiles, byte counters, series tables — for every
/// registered engine. `diff` of the two rendered reports is empty.
#[test]
fn conformant_frontend_reproduces_direct_runs_for_every_engine() {
    for engine in engines() {
        let direct = run_sharded_with_results(&ShardedRun::new(base(engine, 32 << 20), 2))
            .expect("sharded run");
        let served = run_frontend_with_results(&FrontendRun::conformant(base(engine, 32 << 20), 2))
            .expect("frontend run");
        assert_eq!(
            direct.report.render(),
            served.report.render(),
            "{engine}: front-end QD=1 report must diff empty against the direct run"
        );
        // The render equality is backed by result-level equality, not
        // formatting coincidence.
        for (shard, (d, s)) in direct
            .shard_results
            .iter()
            .zip(&served.shard_results)
            .enumerate()
        {
            assert_eq!(d.ops_executed, s.ops_executed, "{engine} shard {shard}");
            assert_eq!(d.samples, s.samples, "{engine} shard {shard} samples");
            assert_eq!(d.latency.count(), s.latency.count());
            assert_eq!(d.latency.quantile(0.99), s.latency.quantile(0.99));
            assert_eq!(d.app_bytes_written, s.app_bytes_written);
            assert_eq!(d.host_bytes_written, s.host_bytes_written);
            assert_eq!(d.out_of_space, s.out_of_space);
        }
    }
}

/// The equivalence holds through the engines' own asynchronous read
/// paths too: with an engine-level I/O queue depth above 1 (batched
/// scans, detached compaction reads) the front-end still reproduces
/// the direct run byte-identically, because its dispatcher sits above
/// the engine, not inside it.
#[test]
fn conformance_survives_engine_level_queue_depth() {
    let mut cfg = base(EngineKind::lsm(), 32 << 20);
    cfg.queue_depth = 8;
    cfg.read_fraction = 0.5;
    let direct = ptsbench::harness::run_sharded(&ShardedRun::new(cfg.clone(), 2)).expect("direct");
    let served = run_frontend(&FrontendRun::conformant(cfg, 2)).expect("served");
    assert_eq!(direct.render(), served.render());
    assert!(direct.render().contains("qd[submitted="));
}

/// One bound client over one shard equals the plain unsharded runner:
/// the conformance chain reaches all the way down to `run()`.
#[test]
fn single_client_frontend_matches_the_unsharded_runner() {
    let cfg = base(EngineKind::lsm(), 32 << 20);
    let single = run(&cfg).expect("single run");
    let outcome = run_frontend_with_results(&FrontendRun::conformant(cfg, 1)).expect("frontend");
    let shard = &outcome.shard_results[0];
    assert_eq!(shard.ops_executed, single.ops_executed);
    assert_eq!(shard.samples, single.samples);
    assert_eq!(shard.latency.count(), single.latency.count());
    assert_eq!(shard.host_bytes_written, single.host_bytes_written);
}

/// In the conformant shape, queueing cannot occur (one bound client
/// per shard, closed loop) — and the report must not even mention the
/// serving layer, preserving the pre-front-end renderer byte-for-byte.
#[test]
fn conformant_reports_carry_no_serving_metrics() {
    let report = run_frontend(&FrontendRun::conformant(
        base(EngineKind::lsm(), 32 << 20),
        2,
    ))
    .expect("run");
    assert!(report.queue_delay.is_none());
    assert!(report.load_imbalance().is_none());
    let text = report.render();
    assert!(!text.contains("queue delay"));
    assert!(!text.contains("qdelay["));
    assert!(!text.contains("load["));
}

/// Any departure from the conformant shape *does* surface the serving
/// layer: fan-in above the shard count must produce non-zero queue
/// delay, and the sum of served requests across shards must equal the
/// merged latency count (no request measured twice, none lost).
#[test]
fn fan_in_surfaces_queue_delay_for_every_engine() {
    for engine in engines() {
        let mut cfg = FrontendRun::new(base(engine, 32 << 20), 6);
        cfg.shards = 2;
        cfg.base.read_fraction = 0.5;
        let report = run_frontend(&cfg).expect("run");
        let qd = report.queue_delay.as_ref().expect("serving metrics");
        assert!(
            report.queue_delay_quantile(0.99).expect("p99") > 0,
            "{engine}: 6 clients on 2 shards must queue"
        );
        assert_eq!(
            qd.count(),
            report.latency.count(),
            "{engine}: every served request has exactly one queue-delay sample"
        );
        let loads: u64 = report
            .shards
            .iter()
            .map(|s| s.load.expect("load metrics").served)
            .sum();
        assert_eq!(loads, report.ops, "{engine}: load accounting matches ops");
    }
}

/// The hashed-routing conformance shape also diffs empty: sharding mode
/// is orthogonal to the serving layer's depth-1 equivalence.
#[test]
fn conformance_holds_under_hashed_sharding() {
    let mut direct_cfg = ShardedRun::new(base(EngineKind::lsm(), 32 << 20), 2);
    direct_cfg.sharding = Sharding::Hashed;
    let direct = ptsbench::harness::run_sharded(&direct_cfg).expect("direct");
    let mut served_cfg = FrontendRun::conformant(base(EngineKind::lsm(), 32 << 20), 2);
    served_cfg.sharding = Sharding::Hashed;
    let served = run_frontend(&served_cfg).expect("served");
    assert_eq!(direct.render(), served.render());
    assert!(direct.render().contains("/hash"));
}
