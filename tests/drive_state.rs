//! End-to-end drive-state effects: the §3.4 state controls produce the
//! §4.3/§4.6 phenomena through the whole stack.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ptsbench::core::runner::{run, RunConfig};
use ptsbench::core::state::DriveState;
use ptsbench::core::EngineKind;
use ptsbench::ssd::{DeviceConfig, DeviceProfile, LpnRange, Ssd, MINUTE};

fn quick(engine: EngineKind, state: DriveState) -> RunConfig {
    RunConfig {
        engine,
        drive_state: state,
        device_bytes: 48 << 20,
        duration: 60 * MINUTE,
        sample_window: 5 * MINUTE,
        ..RunConfig::default()
    }
}

#[test]
fn preconditioning_hurts_the_btree_more_than_trimming() {
    let trim = run(&quick(EngineKind::btree(), DriveState::Trimmed)).expect("run");
    let prec = run(&quick(EngineKind::btree(), DriveState::Preconditioned)).expect("run");
    assert!(
        prec.steady.wa_d > trim.steady.wa_d * 1.1,
        "preconditioned B+Tree WA-D {} must exceed trimmed {}",
        prec.steady.wa_d,
        trim.steady.wa_d
    );
    assert!(
        prec.steady.steady_kops < trim.steady.steady_kops,
        "preconditioned B+Tree must be slower"
    );
}

#[test]
fn software_overprovisioning_reduces_wa_d_end_to_end() {
    let no_op = run(&RunConfig {
        partition_fraction: 1.0,
        ..quick(EngineKind::lsm(), DriveState::Preconditioned)
    })
    .expect("run");
    let with_op = run(&RunConfig {
        partition_fraction: 0.75,
        ..quick(EngineKind::lsm(), DriveState::Preconditioned)
    })
    .expect("run");
    assert!(
        with_op.steady.wa_d < no_op.steady.wa_d,
        "OP partition must cut WA-D: {} vs {}",
        with_op.steady.wa_d,
        no_op.steady.wa_d
    );
    assert!(
        with_op.ops_executed > no_op.ops_executed,
        "OP must speed the LSM up"
    );
}

#[test]
fn preconditioned_device_state_is_reproducible() {
    // Two devices preconditioned with the same seed behave identically
    // under the same write sequence — the reproducibility requirement
    // the paper's guidelines demand.
    let mut a = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 32 << 20));
    let mut b = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 32 << 20));
    a.precondition(99).expect("precondition");
    b.precondition(99).expect("precondition");
    let mut rng = SmallRng::seed_from_u64(1);
    let pages = a.logical_pages();
    for _ in 0..5_000 {
        let lpn = rng.gen_range(0..pages);
        a.write_page(lpn).expect("write");
        b.write_page(lpn).expect("write");
    }
    assert_eq!(
        a.smart(),
        b.smart(),
        "identical seeds must give identical dynamics"
    );
}

#[test]
fn blkdiscard_resets_behaviour_but_not_wear() {
    let mut d = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 32 << 20));
    let pages = d.logical_pages();
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..4 * pages {
        d.write_page(rng.gen_range(0..pages)).expect("write");
    }
    let wear_before = d.wear();
    assert!(wear_before.max_erases > 0);
    d.discard_all();
    d.reset_observability();
    // Fresh-drive behaviour:
    for lpn in 0..pages {
        d.write_page(lpn).expect("write");
    }
    assert!((d.smart().wa_d() - 1.0).abs() < 1e-9);
    // ... but the medium remembers its wear.
    assert!(d.wear().max_erases >= wear_before.max_erases);
}

#[test]
fn trimmed_op_partition_is_never_touched() {
    let cfg = RunConfig {
        partition_fraction: 0.75,
        trace_lba: true,
        ..quick(EngineKind::lsm(), DriveState::Trimmed)
    };
    let r = run(&cfg).expect("run");
    let untouched = r.untouched_lba_fraction.expect("traced");
    assert!(
        untouched >= 0.24,
        "the reserved 25% must stay unwritten, untouched = {untouched}"
    );
}

#[test]
fn fstrim_after_deletion_frees_device_space() {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 32 << 20)).into_shared();
    let vfs = ptsbench::vfs::Vfs::whole_device(ssd.clone(), ptsbench::vfs::VfsOptions::default());
    let f = vfs.create("victim").expect("create");
    vfs.write_at(f, 0, &vec![1u8; 4 << 20]).expect("write");
    vfs.delete("victim").expect("delete");
    let mapped_before = ssd.lock().mapped_pages();
    let trimmed = vfs.trim_free_space().expect("fstrim");
    assert!(trimmed >= 1024, "fstrim must discard the dead file's pages");
    assert!(ssd.lock().mapped_pages() < mapped_before);
    let _ = LpnRange::new(0, 1); // silence unused-import lint paths in some cfgs
}
