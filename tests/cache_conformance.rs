//! Cache conformance: a *disabled* read-path tier must be invisible.
//!
//! The read-path acceleration tier (block cache + compression) follows
//! the repo's layering contract: every new knob has an explicit
//! pass-through setting whose output is byte-identical to the code
//! that predates it. `cache_bytes = 0` and `compression_level = 0`
//! (the defaults) keep every engine on its seed read path and on-disk
//! format, so runs configured that way must reproduce the pre-cache
//! harness output **byte-identically at the rendered level** — same
//! labels, same numbers, no `cache` accounting anywhere — for every
//! registered engine, across the sharded driver and the serving
//! front-end.
//!
//! Unlike the other conformance suites, which compare two live runs,
//! this one also pins against a **golden snapshot**
//! (`tests/golden/pr5_cache_off.txt`) captured from the harness before
//! the cache tier existed, so a regression in *any* layer the tier
//! touched — builders, readers, options, the report renderer — shows
//! up as a byte diff against history, not just against a sibling code
//! path.

use ptsbench::core::frontend::FrontendRun;
use ptsbench::core::registry::{EngineKind, EngineRegistry};
use ptsbench::core::runner::{run, RunConfig};
use ptsbench::core::sharded::ShardedRun;
use ptsbench::harness::{run_frontend, run_sharded};
use ptsbench::ssd::MINUTE;
use ptsbench::workload::KeyDistribution;

/// Rendered harness output captured before the read-path tier landed.
const GOLDEN: &str = include_str!("golden/pr5_cache_off.txt");

fn engines() -> Vec<EngineKind> {
    ptsbench::hashlog::register();
    EngineRegistry::all()
}

/// One `@@@section@@@` block of the golden snapshot.
fn golden_section(name: &str) -> String {
    let header = format!("@@@{name}@@@\n");
    let start = GOLDEN
        .find(&header)
        .unwrap_or_else(|| panic!("golden section {name} missing"))
        + header.len();
    let end = GOLDEN[start..]
        .find("@@@")
        .expect("golden sections are terminated");
    GOLDEN[start..start + end].to_string()
}

/// The exact shapes the snapshot was captured with (small enough for
/// debug-mode tests: 16 MiB per shard, short measured phase).
fn base(engine: EngineKind, total_bytes: u64) -> RunConfig {
    RunConfig {
        engine,
        device_bytes: total_bytes,
        duration: 10 * MINUTE,
        sample_window: 5 * MINUTE,
        ..RunConfig::default()
    }
}

fn serving_shape(engine: EngineKind) -> FrontendRun {
    let mut cfg = FrontendRun::new(base(engine, 32 << 20), 6);
    cfg.shards = 2;
    cfg.base.read_fraction = 0.5;
    cfg.base.distribution = KeyDistribution::Zipfian { theta: 0.9 };
    cfg
}

/// The tentpole guarantee: with the tier off, today's sharded harness
/// reproduces the pre-cache golden output byte-for-byte for every
/// engine that existed when the snapshot was taken.
#[test]
fn cache_off_sharded_runs_match_the_pre_cache_golden_output() {
    for engine in engines() {
        let name = format!("sharded/{engine}");
        let report = run_sharded(&ShardedRun::new(base(engine, 32 << 20), 2)).expect("run");
        assert_eq!(
            report.render(),
            golden_section(&name),
            "{engine}: cache-off sharded output must be byte-identical to seed"
        );
        assert!(
            !report.render().contains("cache"),
            "{engine}: no cache accounting may appear with the tier off"
        );
    }
}

/// The same pin through the serving front-end (fan-in, Zipfian reads —
/// the shape where the cache would matter most if it were on).
#[test]
fn cache_off_frontend_runs_match_the_pre_cache_golden_output() {
    for engine in engines() {
        let name = format!("frontend/{engine}");
        let report = run_frontend(&serving_shape(engine)).expect("run");
        assert_eq!(
            report.render(),
            golden_section(&name),
            "{engine}: cache-off front-end output must be byte-identical to seed"
        );
    }
}

/// The single-threaded runner keeps the contract at the API level:
/// cache-off results carry no cache accounting and an unchanged label,
/// and two cache-off runs agree with each other exactly.
#[test]
fn cache_off_runner_results_carry_no_cache_accounting() {
    for engine in engines() {
        let cfg = base(engine, 32 << 20);
        let r = run(&cfg).expect("run");
        assert!(r.cache.is_none(), "{engine}: cache off means no stats");
        assert!(
            !cfg.label().contains("/c") && !cfg.label().contains("/z"),
            "{engine}: default labels must not grow cache/compression tags: {}",
            cfg.label()
        );
        let again = run(&cfg).expect("run");
        assert_eq!(r.ops_executed, again.ops_executed);
        assert_eq!(r.host_bytes_written, again.host_bytes_written);
        assert_eq!(r.host_bytes_read, again.host_bytes_read);
    }
}

/// Sanity check of the other direction: turning the cache on *does*
/// perturb the report — the label gains the budget tag and the cache
/// accounting appears — so the byte-identity above is not a vacuous
/// comparison.
#[test]
fn cache_on_perturbs_the_report() {
    for engine in engines() {
        let mut shape = ShardedRun::new(base(engine, 32 << 20), 2);
        shape.base.read_fraction = 0.5;
        shape.base.distribution = KeyDistribution::Zipfian { theta: 0.9 };
        let mut cached_shape = shape.clone();
        cached_shape.base.cache_bytes = 2 << 20;
        let plain = run_sharded(&shape).expect("run");
        let cached = run_sharded(&cached_shape).expect("run");
        assert_ne!(
            plain.render(),
            cached.render(),
            "{engine}: an active cache must show up in the report"
        );
        let text = cached.render();
        assert!(text.contains("/c2048k"), "{engine}: label tag: {text}");
        assert!(
            text.contains("cache: hits=") && text.contains("cache[hit="),
            "{engine}: cache accounting must render: {text}"
        );
        let totals = cached.cache_totals().expect("cache totals");
        assert!(
            totals.hits + totals.misses > 0,
            "{engine}: a Zipfian read phase must touch the cache"
        );
    }
}

/// Compression rides the same contract: level 0 output is pinned by
/// the golden tests above, and an active level changes only what it
/// must (label tag; fewer device read bytes stay an engine-level
/// property checked in `examples/fig_readamp.rs`).
#[test]
fn compression_level_tags_the_label_and_round_trips_the_run() {
    let mut cfg = base(EngineKind::lsm(), 32 << 20);
    cfg.read_fraction = 0.5;
    cfg.cache_bytes = 1 << 20;
    cfg.compression_level = 3;
    assert!(cfg.label().ends_with("/c1024k/z3"), "{}", cfg.label());
    let r = run(&cfg).expect("run");
    assert!(!r.out_of_space);
    assert!(r.ops_executed > 0);
    let cache = r.cache.expect("cache configured");
    assert!(cache.hits + cache.misses > 0);
}
