//! Full-stack integration: both engines running through the façade on a
//! simulated flash stack, checked against an in-memory model, with the
//! device's accounting cross-validated at every layer.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ptsbench::core::{EngineKind, EngineTuning};
use ptsbench::ssd::{DeviceConfig, DeviceProfile, SharedSsd, Ssd};
use ptsbench::vfs::{Vfs, VfsOptions};

fn stack(bytes: u64) -> (SharedSsd, Vfs) {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), bytes)).into_shared();
    let vfs = Vfs::whole_device(ssd.clone(), VfsOptions::default());
    (ssd, vfs)
}

#[test]
fn engines_agree_with_model_on_shared_stack() {
    for kind in [EngineKind::lsm(), EngineKind::btree()] {
        let (ssd, vfs) = stack(64 << 20);
        let mut sys = kind
            .open(vfs.clone(), &EngineTuning::for_device(64 << 20))
            .expect("build");
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut rng = SmallRng::seed_from_u64(123);

        for step in 0..6_000u32 {
            let k = format!("key{:07}", rng.gen_range(0..800u32)).into_bytes();
            match rng.gen_range(0..10) {
                0..=5 => {
                    let v = format!("val-{step}")
                        .into_bytes()
                        .repeat(1 + (step % 5) as usize);
                    sys.put(&k, &v).expect("put");
                    model.insert(k, v);
                }
                6..=7 => {
                    sys.delete(&k).expect("delete");
                    model.remove(&k);
                }
                8 => {
                    assert_eq!(
                        sys.get(&k).expect("get"),
                        model.get(&k).cloned(),
                        "{kind:?}"
                    );
                }
                _ => {
                    let got = sys.scan_to_vec(&k, None, 5).expect("scan");
                    let expect: Vec<_> = model
                        .range(k.clone()..)
                        .take(5)
                        .map(|(a, b)| (a.clone(), b.clone()))
                        .collect();
                    assert_eq!(got, expect, "{kind:?} scan at step {step}");
                }
            }
        }
        sys.flush().expect("flush");
        for (k, v) in &model {
            assert_eq!(
                sys.get(k).expect("get").as_ref(),
                Some(v),
                "{kind:?} final audit"
            );
        }

        // Cross-layer accounting: the device saw at least as many NAND
        // writes as host writes; the engine reported app bytes; the
        // filesystem holds at least the live dataset.
        let smart = ssd.lock().smart();
        assert!(smart.nand_pages_written >= smart.host_pages_written);
        assert!(smart.host_pages_written > 0);
        assert!(sys.app_bytes_written() > 0);
        let live_bytes: u64 = model.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum();
        assert!(
            vfs.stats().used_bytes >= live_bytes,
            "{kind:?}: fs usage below live data"
        );
    }
}

#[test]
fn simulated_time_advances_monotonically_through_the_stack() {
    let (ssd, vfs) = stack(32 << 20);
    let clock = vfs.clock();
    let mut sys = EngineKind::lsm()
        .open(vfs, &EngineTuning::for_device(32 << 20))
        .expect("build");
    let mut last = clock.now();
    for i in 0..2_000u32 {
        sys.put(format!("k{i:06}").as_bytes(), &[0u8; 512])
            .expect("put");
        let now = clock.now();
        assert!(now >= last, "clock went backwards at op {i}");
        last = now;
    }
    assert!(last > 0, "I/O must consume simulated time");
    // The device clock is the same clock.
    assert_eq!(ssd.lock().clock().now(), last);
}

#[test]
fn nodiscard_semantics_survive_engine_churn() {
    // After heavy LSM churn under nodiscard, device-mapped pages exceed
    // the filesystem's live usage (dead file pages are still "valid" in
    // the FTL) — the aged-filesystem behaviour Pitfall 3 depends on.
    let (ssd, vfs) = stack(48 << 20);
    let mut sys = EngineKind::lsm()
        .open(vfs.clone(), &EngineTuning::for_device(48 << 20))
        .expect("build");
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..4_000 {
        let k = format!("key{:07}", rng.gen_range(0..2_000u32));
        sys.put(k.as_bytes(), &[7u8; 2_000]).expect("put");
    }
    sys.flush().expect("flush");
    let mapped = ssd.lock().mapped_pages();
    let live = vfs.stats().used_pages;
    assert!(
        mapped > live,
        "nodiscard churn must leave dead-but-mapped pages: mapped {mapped} vs live {live}"
    );
}

#[test]
fn two_engines_side_by_side_on_partitions() {
    // Two filesystems on disjoint partitions of one device: engines
    // must not interfere, and the device sees the sum of their traffic.
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 64 << 20)).into_shared();
    let pages = ssd.lock().logical_pages();
    let vfs_a = Vfs::new(
        ssd.clone(),
        ptsbench::ssd::LpnRange::new(0, pages / 2),
        VfsOptions::default(),
    );
    let vfs_b = Vfs::new(
        ssd.clone(),
        ptsbench::ssd::LpnRange::new(pages / 2, pages),
        VfsOptions::default(),
    );
    let mut lsm = EngineKind::lsm()
        .open(vfs_a, &EngineTuning::for_device(32 << 20))
        .expect("lsm");
    let mut btree = EngineKind::btree()
        .open(vfs_b, &EngineTuning::for_device(32 << 20))
        .expect("btree");
    for i in 0..1_000u32 {
        let k = format!("k{i:06}");
        lsm.put(k.as_bytes(), b"from-lsm").expect("lsm put");
        btree.put(k.as_bytes(), b"from-btree").expect("btree put");
    }
    for i in (0..1_000u32).step_by(97) {
        let k = format!("k{i:06}");
        assert_eq!(
            lsm.get(k.as_bytes()).expect("get"),
            Some(b"from-lsm".to_vec())
        );
        assert_eq!(
            btree.get(k.as_bytes()).expect("get"),
            Some(b"from-btree".to_vec())
        );
    }
    assert!(ssd.lock().smart().host_pages_written > 0);
}
