//! Property-based tests of the background-maintenance subsystem:
//!
//! * arbitrary interleavings of foreground ops and maintenance slices
//!   preserve read-your-writes on every engine — deferring flushes,
//!   compactions, GC and checkpoints must never change *what* a read
//!   returns, only when the rewrite work happens;
//! * every background job installs its version edit exactly once,
//!   however the slices interleave;
//! * the rate budget is a window invariant: over any virtual-time
//!   window `W`, greedily paced slices charge at most
//!   `rate * W + burst + max_single_charge` bytes;
//! * background bytes close against the per-cause device ledger — the
//!   scheduler's logical byte counters are a lower bound on the
//!   (page-granular) bytes the device charged to the maintenance
//!   cause, and the ledger itself closes exactly against SMART.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ptsbench::btree::{BTreeDb, BTreeOptions};
use ptsbench::hashlog::{HashLogDb, HashLogOptions};
use ptsbench::lsm::{LsmDb, LsmOptions};
use ptsbench::maint::{MaintConfig, RateBudget};
use ptsbench::ssd::{Cause, DeviceConfig, DeviceProfile, Ssd, Tracer};
use ptsbench::vfs::{Vfs, VfsOptions};

fn vfs() -> Vfs {
    let ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 48 << 20));
    Vfs::whole_device(ssd.into_shared(), VfsOptions::default())
}

fn traced_vfs() -> Vfs {
    let mut ssd = Ssd::new(DeviceConfig::from_profile(DeviceProfile::ssd1(), 48 << 20));
    ssd.attach_tracer(Tracer::recording());
    Vfs::whole_device(ssd.into_shared(), VfsOptions::default())
}

/// Randomized pacing knobs: slow enough that pacing bites, fast enough
/// that drains terminate quickly under forced slices.
fn maint_cfg() -> impl Strategy<Value = MaintConfig> {
    (
        (1u64 << 18)..(64u64 << 20),  // rate_bytes_per_sec
        (4u64 << 10)..(2u64 << 20),   // burst_bytes
        (4u64 << 10)..(256u64 << 10), // slice_bytes
    )
        .prop_map(|(rate, burst, slice)| MaintConfig {
            rate_bytes_per_sec: rate,
            burst_bytes: burst,
            slice_bytes: slice,
            ..MaintConfig::enabled()
        })
}

#[derive(Debug, Clone)]
enum KvOp {
    Put(u16, u16),
    Delete(u16),
    Get(u16),
    Scan(u16, u8),
    /// Pump up to this many maintenance slices — the interleaving knob.
    Pump(u8),
}

fn kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        6 => (0..64u16, 0..2_000u16).prop_map(|(k, v)| KvOp::Put(k, v)),
        2 => (0..64u16).prop_map(KvOp::Delete),
        4 => (0..64u16).prop_map(KvOp::Get),
        1 => (0..64u16, 1..20u8).prop_map(|(s, n)| KvOp::Scan(s, n)),
        3 => (0..8u8).prop_map(KvOp::Pump),
    ]
}

fn key(i: u16) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

fn value(tag: u16, step: usize) -> Vec<u8> {
    format!("value-{tag}-{step}")
        .into_bytes()
        .repeat(2 + tag as usize % 6)
}

/// One generic interleaving driver per engine: replay `ops` against a
/// model (maintenance slices where `Pump` says), drain, audit. The
/// closures adapt the three engines' identical-but-distinct APIs.
macro_rules! drive_interleaved {
    ($db:expr, $ops:expr, $scan:expr) => {{
        let mut db = $db;
        let ops: &[KvOp] = $ops;
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (step, op) in ops.iter().enumerate() {
            match op {
                KvOp::Put(k, v) => {
                    let (k, v) = (key(*k), value(*v, step));
                    db.put(&k, &v).expect("put");
                    model.insert(k, v);
                }
                KvOp::Delete(k) => {
                    let k = key(*k);
                    db.delete(&k).expect("delete");
                    model.remove(&k);
                }
                KvOp::Get(k) => {
                    let k = key(*k);
                    assert_eq!(
                        db.get(&k).expect("get"),
                        model.get(&k).cloned(),
                        "step {step}"
                    );
                }
                KvOp::Scan(s, n) => {
                    if $scan {
                        let start = key(*s);
                        let got = db.scan(&start, None, *n as usize).expect("scan");
                        let want: Vec<_> = model
                            .range(start..)
                            .take(*n as usize)
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect();
                        assert_eq!(got, want, "step {step}");
                    }
                }
                KvOp::Pump(n) => {
                    for _ in 0..*n {
                        if !db.run_maintenance_slice().expect("slice") {
                            break;
                        }
                    }
                }
            }
        }
        db.drain_maintenance().expect("drain");
        let stats = db.maint_stats().expect("maintenance mode is on");
        prop_assert_eq!(stats.jobs, stats.installs, "each job installs exactly once");
        prop_assert!(stats.slices >= stats.jobs, "jobs run in bounded slices");
        for (k, v) in &model {
            assert_eq!(db.get(k).expect("get"), Some(v.clone()), "final audit");
        }
        stats
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// LSM: deferred flush/compaction under arbitrary interleavings
    /// preserves read-your-writes; every job installs exactly once.
    #[test]
    fn lsm_interleavings_preserve_reads_and_install_once(
        ops in proptest::collection::vec(kv_op(), 1..200),
        maint in maint_cfg(),
    ) {
        let opts = LsmOptions { maint, ..LsmOptions::small() };
        let db = LsmDb::open(vfs(), opts).expect("open");
        drive_interleaved!(db, &ops, true);
    }

    /// Hashlog: deferred segment GC under arbitrary interleavings —
    /// victims are rewritten in slices while reads keep landing on
    /// not-yet-moved records.
    #[test]
    fn hashlog_interleavings_preserve_reads_and_install_once(
        ops in proptest::collection::vec(kv_op(), 1..200),
        maint in maint_cfg(),
    ) {
        let opts = HashLogOptions { maint, ..HashLogOptions::small() };
        let db = HashLogDb::open(vfs(), opts).expect("open");
        drive_interleaved!(db, &ops, true);
    }

    /// B+Tree: deferred fuzzy checkpoints under arbitrary interleavings
    /// never lose an update (the journal holds everything the
    /// checkpoint has not yet made durable).
    #[test]
    fn btree_interleavings_preserve_reads_and_install_once(
        ops in proptest::collection::vec(kv_op(), 1..150),
        maint in maint_cfg(),
    ) {
        let opts = BTreeOptions { maint, ..BTreeOptions::small() };
        let db = BTreeDb::open(vfs(), opts).expect("open");
        drive_interleaved!(db, &ops, false);
    }

    /// The window invariant, randomized: greedily paced charges over
    /// any window never exceed `rate * W + burst + max_single_charge`,
    /// whatever the slice sizes and inter-slice gaps.
    #[test]
    fn rate_budget_never_exceeds_any_window(
        rate in (1u64 << 16)..(1u64 << 26),
        burst in (1u64 << 10)..(1u64 << 20),
        steps in proptest::collection::vec(
            (1u64..(256u64 << 10), 0u64..2_000_000u64), 1..200),
    ) {
        let mut budget = RateBudget::new(rate, burst, 0);
        let mut now = 0u64;
        let mut charged = 0u64;
        let mut max_charge = 0u64;
        for (bytes, dt) in steps {
            now += dt;
            if budget.ready(now) {
                budget.charge(now, bytes);
                charged += bytes;
                max_charge = max_charge.max(bytes);
            }
        }
        let allowed =
            (now as u128 * rate as u128 / 1_000_000_000u128) as u64 + burst + max_charge;
        prop_assert!(
            charged <= allowed,
            "charged {charged} bytes over a {now} ns window; allowance {allowed}"
        );
    }

    /// Background bytes close against the per-cause device ledger: the
    /// scheduler's logical counters never exceed the page-granular
    /// bytes the device charged to `Cause::SegmentGc`, and the ledger
    /// totals close exactly against SMART.
    #[test]
    fn background_bytes_close_against_cause_ledger(
        rounds in 8..24u16,
        keys in 8..32u16,
        mask in any::<u64>(),
    ) {
        let v = traced_vfs();
        let opts = HashLogOptions {
            maint: MaintConfig::enabled(),
            trace: true,
            ..HashLogOptions::small()
        };
        let mut db = HashLogDb::open(v.clone(), opts).expect("open");
        let mut step = 0u32;
        for round in 0..rounds {
            for i in 0..keys {
                db.put(&key(i), &vec![round as u8; 512]).expect("put");
                if (mask >> (step % 64)) & 1 == 1 {
                    while db.run_maintenance_slice().expect("slice") {}
                }
                step += 1;
            }
        }
        db.drain_maintenance().expect("drain");
        let stats = db.maint_stats().expect("maintenance mode is on");
        prop_assert_eq!(stats.jobs, stats.installs);

        let dev = v.ssd();
        let dev = dev.lock();
        let cause = dev.cause_stats().expect("recording tracer attached");
        let smart = dev.smart();
        let page = dev.page_size() as u64;
        prop_assert_eq!(
            cause.total_bytes_written(),
            smart.host_pages_written * page,
            "per-cause written bytes must sum to SMART host writes"
        );
        prop_assert_eq!(
            cause.total_bytes_read(),
            smart.host_pages_read * page,
            "per-cause read bytes must sum to SMART host reads"
        );
        if stats.jobs > 0 {
            let gc = cause.get(Cause::SegmentGc);
            prop_assert!(
                gc.bytes_read >= stats.bytes_read,
                "scheduler-metered reads ({}) exceed the GC cause ledger ({})",
                stats.bytes_read,
                gc.bytes_read
            );
            prop_assert!(
                gc.bytes_written >= stats.bytes_written,
                "scheduler-metered writes ({}) exceed the GC cause ledger ({})",
                stats.bytes_written,
                gc.bytes_written
            );
            prop_assert!(gc.bytes_read > 0 && gc.bytes_written > 0);
        }
    }
}
