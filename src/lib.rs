//! # ptsbench — umbrella crate
//!
//! Re-exports the whole `ptsbench` workspace behind one dependency, for
//! examples, integration tests, and downstream users who want the full
//! stack:
//!
//! * [`ssd`] — flash SSD simulator (FTL, GC, over-provisioning, TRIM,
//!   write cache, latency model, SMART counters, LBA traces).
//! * [`vfs`] — extent filesystem and partitioning over the simulated drive.
//! * [`lsm`] — leveled LSM-tree key-value store (RocksDB stand-in).
//! * [`btree`] — paged B+Tree key-value store (WiredTiger stand-in).
//! * [`cache`] — the read-path acceleration tier: a fixed-budget block
//!   cache with TinyLFU admission plus the deterministic block/segment
//!   compression codec, shared by the engines.
//! * [`hashlog`] — KVell-style log-structured hash KV store, registered
//!   with the engine registry from outside `ptsbench-core` (the proof
//!   that the engine API is open).
//! * [`maint`] — the virtual-time background-maintenance scheduler:
//!   rate-budgeted job tickets and slice pacing shared by the engines'
//!   deferred flush/compaction/GC/checkpoint paths.
//! * [`trace`] — the zero-cost-when-off tracing subsystem: nested
//!   virtual-time spans with cause tags, per-cause device-traffic
//!   attribution, Chrome trace-event export and per-op phase
//!   breakdowns.
//! * [`harness`] — the concurrent sharded workload driver: N client
//!   threads over M shared-nothing engine shards in virtual-time
//!   lockstep, merged into one deterministic report.
//! * [`workload`] — key/value workload generators.
//! * [`metrics`] — time series, write-amplification math, CUSUM
//!   steady-state detection, CDFs, storage-cost models.
//! * [`core`] — the paper's methodology: the seven benchmarking pitfalls,
//!   experiment runners and figure drivers.
//!
//! See the repository `README.md` for a guided tour and `DESIGN.md` for
//! the system inventory.

pub use ptsbench_btree as btree;
pub use ptsbench_cache as cache;
pub use ptsbench_core as core;
pub use ptsbench_harness as harness;
pub use ptsbench_hashlog as hashlog;
pub use ptsbench_lsm as lsm;
pub use ptsbench_maint as maint;
pub use ptsbench_metrics as metrics;
pub use ptsbench_ssd as ssd;
pub use ptsbench_trace as trace;
pub use ptsbench_vfs as vfs;
pub use ptsbench_workload as workload;
